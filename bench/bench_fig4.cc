// Figure 4 (§6.3, performance during view change): throughput timeline with
// the primary crashed mid-run. Paper setup: c=m=1, N=6 for SeeMoRe,
// checkpoint period 10000, 0/0 benchmark, failure injected around t=30 on a
// 0-100 ms timeline. Expected shape: every protocol dips to zero for the
// duration of its view change and then recovers to its previous level, with
// outage ordering Lion < Dog < Peacock < S-UpRight/BFT (BFT taking about
// twice the Lion outage). Each line is one scenario run with a
// "crash-primary" schedule event; the engine resolves who the primary is
// at crash time.

#include <algorithm>
#include <cstdio>
#include <string>

#include "bench/bench_common.h"

namespace seemore {
namespace bench {
namespace {

struct TimelineResult {
  std::string name;
  scenario::ScenarioReport report;
  std::vector<SimTime> completions;
  SimTime outage = 0;
};

TimelineResult RunTimeline(const std::string& system, SimTime crash_at,
                           int clients) {
  // The §6.3 regime (crash time, detector timeouts, horizon, buckets) is
  // defined once in scenario/registry.h so this bench and the CI smoke
  // scenario "fig4-primary-crash" can never drift apart.
  Result<ScenarioSpec> spec = scenario::Fig4SystemSpec(system, clients);
  if (!spec.ok()) {
    std::fprintf(stderr, "%s\n", spec.status().ToString().c_str());
    std::abort();
  }

  TimelineResult result;
  result.name = system;
  scenario::ScenarioHooks hooks;
  hooks.on_complete = [&result](SimTime when, SimTime) {
    result.completions.push_back(when);
  };
  Result<scenario::ScenarioReport> report =
      scenario::RunScenario(*spec, hooks);
  if (!report.ok()) {
    std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
    std::abort();
  }
  result.report = *std::move(report);

  // Outage: the longest completion-free gap in the window after the crash
  // (completions are recorded in virtual-time order).
  SimTime previous = crash_at;
  SimTime best_gap = 0;
  for (SimTime when : result.completions) {
    if (when < crash_at) continue;
    if (when > crash_at + Millis(50)) break;
    best_gap = std::max(best_gap, when - previous);
    previous = when;
  }
  result.outage = best_gap;
  return result;
}

}  // namespace
}  // namespace bench
}  // namespace seemore

int main(int argc, char** argv) {
  using namespace seemore;
  using namespace seemore::bench;
  const bool quick = argc > 1 && std::string(argv[1]) == "--quick";
  const SimTime crash_at = Millis(30);
  const SimTime horizon = Millis(100);
  const int clients = quick ? 16 : 48;

  std::printf(
      "Figure 4 reproduction: throughput timeline across a primary crash\n"
      "(c=1, m=1, checkpoint period 10000, crash at t=30ms)\n\n");

  std::vector<TimelineResult> results;
  for (const std::string& system : scenario::PaperSystemNames()) {
    results.push_back(RunTimeline(system, crash_at, clients));
  }

  // Timeline table: Kreq/s per 2ms bucket.
  std::printf("%-6s", "t[ms]");
  for (const TimelineResult& r : results) {
    std::printf(" %10s", r.name.c_str());
  }
  std::printf("\n");
  const size_t buckets = static_cast<size_t>(horizon / Millis(2));
  for (size_t b = 0; b < buckets; ++b) {
    std::printf("%-6zu", b * 2);
    for (const TimelineResult& r : results) {
      std::printf(" %10.1f", r.report.timeline.KreqsAt(b));
    }
    std::printf("\n");
  }

  BenchResultsJson json("fig4");
  std::printf("\nMeasured out-of-service window after the crash:\n");
  for (const TimelineResult& r : results) {
    std::printf("  %-10s %5.1f ms\n", r.name.c_str(), ToMillis(r.outage));
    json.AddScalar("outage_ms", r.name, ToMillis(r.outage));
  }
  json.Write();
  std::printf(
      "\nPaper reference (§6.3): Lion 15 ms, Dog 20 ms, Peacock 24 ms; BFT "
      "about twice the Lion outage.\n");
  return 0;
}
