// Figure 4 (§6.3, performance during view change): throughput timeline with
// the primary crashed mid-run. Paper setup: c=m=1, N=6 for SeeMoRe,
// checkpoint period 10000, 0/0 benchmark, failure injected around t=30 on a
// 0-100 ms timeline. Expected shape: every protocol dips to zero for the
// duration of its view change and then recovers to its previous level, with
// outage ordering Lion < Dog < Peacock < S-UpRight/BFT (BFT taking about
// twice the Lion outage). Each line is one scenario run with a
// "crash-primary" schedule event; the engine resolves who the primary is
// at crash time.

#include <algorithm>
#include <cstdio>
#include <string>

#include "bench/bench_common.h"

namespace seemore {
namespace bench {
namespace {

struct TimelineResult {
  std::string name;
  scenario::ScenarioReport report;
  std::vector<SimTime> completions;
  SimTime outage = 0;
};

/// Outage: the longest completion-free gap in the window after the crash
/// (completions are recorded in virtual-time order).
SimTime OutageAfter(const std::vector<SimTime>& completions,
                    SimTime crash_at) {
  SimTime previous = crash_at;
  SimTime best_gap = 0;
  for (SimTime when : completions) {
    if (when < crash_at) continue;
    if (when > crash_at + Millis(50)) break;
    best_gap = std::max(best_gap, when - previous);
    previous = when;
  }
  return best_gap;
}

/// One run per §6 system, all submitted through RunMany: the hooks for
/// point i record completions into results[i] only, so runs on different
/// workers never share state.
std::vector<TimelineResult> RunTimelines(SimTime crash_at, int clients,
                                         int jobs) {
  // The §6.3 regime (crash time, detector timeouts, horizon, buckets) is
  // defined once in scenario/registry.h so this bench and the CI smoke
  // scenario "fig4-primary-crash" can never drift apart.
  std::vector<ScenarioSpec> specs;
  std::vector<TimelineResult> results;
  for (const std::string& system : scenario::PaperSystemNames()) {
    Result<ScenarioSpec> spec = scenario::Fig4SystemSpec(system, clients);
    if (!spec.ok()) {
      std::fprintf(stderr, "%s\n", spec.status().ToString().c_str());
      std::abort();
    }
    specs.push_back(*std::move(spec));
    TimelineResult result;
    result.name = system;
    results.push_back(std::move(result));
  }

  Result<std::vector<scenario::ScenarioReport>> reports = scenario::RunMany(
      specs, jobs, [&results](size_t i) {
        scenario::ScenarioHooks hooks;
        hooks.on_complete = [&results, i](SimTime when, SimTime) {
          results[i].completions.push_back(when);
        };
        return hooks;
      });
  if (!reports.ok()) {
    std::fprintf(stderr, "%s\n", reports.status().ToString().c_str());
    std::abort();
  }
  for (size_t i = 0; i < results.size(); ++i) {
    results[i].report = std::move((*reports)[i]);
    results[i].outage = OutageAfter(results[i].completions, crash_at);
  }
  return results;
}

}  // namespace
}  // namespace bench
}  // namespace seemore

int main(int argc, char** argv) {
  using namespace seemore;
  using namespace seemore::bench;
  const bool quick = argc > 1 && std::string(argv[1]) == "--quick";
  const int jobs = ParseJobs(argc, argv);
  const SimTime crash_at = Millis(30);
  const SimTime horizon = Millis(100);
  const int clients = quick ? 16 : 48;

  std::printf(
      "Figure 4 reproduction: throughput timeline across a primary crash\n"
      "(c=1, m=1, checkpoint period 10000, crash at t=30ms; %d jobs)\n\n",
      jobs);

  std::vector<TimelineResult> results = RunTimelines(crash_at, clients, jobs);

  // Timeline table: Kreq/s per 2ms bucket.
  std::printf("%-6s", "t[ms]");
  for (const TimelineResult& r : results) {
    std::printf(" %10s", r.name.c_str());
  }
  std::printf("\n");
  const size_t buckets = static_cast<size_t>(horizon / Millis(2));
  for (size_t b = 0; b < buckets; ++b) {
    std::printf("%-6zu", b * 2);
    for (const TimelineResult& r : results) {
      std::printf(" %10.1f", r.report.timeline.KreqsAt(b));
    }
    std::printf("\n");
  }

  BenchResultsJson json("fig4");
  std::printf("\nMeasured out-of-service window after the crash:\n");
  for (const TimelineResult& r : results) {
    std::printf("  %-10s %5.1f ms\n", r.name.c_str(), ToMillis(r.outage));
    json.AddScalar("outage_ms", r.name, ToMillis(r.outage));
  }
  json.Write();
  std::printf(
      "\nPaper reference (§6.3): Lion 15 ms, Dog 20 ms, Peacock 24 ms; BFT "
      "about twice the Lion outage.\n");
  return 0;
}
