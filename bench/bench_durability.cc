// Durability cost bench: what does the WAL cost, and how much does group
// commit buy back?
//
//  A. Fsync-batch sweep — Lion (c=m=1) under steady load with the durable
//     store off, then on at fsync_interval ∈ {1, 8, 64, 512}. Interval 1
//     pays one modeled fsync per committed batch; larger intervals batch
//     records per sync (group commit) and converge on the write-cost floor.
//  B. Restart cost — one kill-and-restart run per fsync interval, reporting
//     end-to-end throughput with a mid-run recovery in the measurement
//     window (the availability price of the durability knob, not just its
//     steady-state one).
//
// Every point is a ScenarioSpec run through scenario::RunScenario; results
// land in BENCH_durability.json for cross-PR tracking.

#include <cstdio>
#include <string>

#include "bench/bench_common.h"

namespace seemore {
namespace bench {
namespace {

/// Fsync interval 0 encodes "durability off" in this bench's sweeps.
constexpr int kSweep[] = {0, 1, 8, 64, 512};

scenario::ScenarioBuilder DurableBase(int clients, SimTime measure,
                                      int fsync_interval) {
  scenario::ScenarioBuilder builder(scenario::PaperBaseSpec(/*seed=*/29));
  builder.SeeMoRe(SeeMoReMode::kLion, 1, 1)
      .Kv(128, 0.5)
      .Clients(clients)
      .CheckpointPeriod(64)
      .Warmup(Millis(150))
      .Measure(measure);
  if (fsync_interval > 0) {
    builder.Durability(fsync_interval, /*segment_bytes=*/256 * 1024);
  }
  return builder;
}

std::string PointLabel(int fsync_interval) {
  return fsync_interval == 0 ? "off"
                             : "fsync=" + std::to_string(fsync_interval);
}

}  // namespace
}  // namespace bench
}  // namespace seemore

int main(int argc, char** argv) {
  using namespace seemore;
  using namespace seemore::bench;
  const bool quick = argc > 1 && std::string(argv[1]) == "--quick";
  const int jobs = ParseJobs(argc, argv);
  const SimTime measure = quick ? Millis(250) : Millis(600);
  const int clients = quick ? 32 : 64;

  BenchResultsJson json("durability");

  std::printf("=== Durability A: fsync-batch sweep (Lion, c=m=1, %d clients, "
              "%d jobs) ===\n",
              clients, jobs);
  {
    std::vector<ScenarioSpec> specs;
    for (int interval : kSweep) {
      specs.push_back(DurableBase(clients, measure, interval).spec());
    }
    const std::vector<scenario::ScenarioReport> reports = RunAll(specs, jobs);
    for (size_t i = 0; i < reports.size(); ++i) {
      const RunResult& result = reports[i].result;
      std::printf("  %-10s thrpt=%7.2f kreq/s  lat=%.2f ms  p99=%.2f ms\n",
                  PointLabel(kSweep[i]).c_str(), result.throughput_kreqs,
                  result.mean_latency_ms, result.p99_latency_ms);
      json.AddCurve("fsync_sweep", PointLabel(kSweep[i]), {result});
    }
  }

  std::printf("=== Durability B: kill-and-restart mid-measurement ===\n");
  {
    std::vector<ScenarioSpec> specs;
    std::vector<int> intervals;
    for (int interval : kSweep) {
      if (interval == 0) continue;  // restart needs the durable store
      scenario::ScenarioBuilder builder =
          DurableBase(clients, measure, interval);
      builder.Name("restart-" + PointLabel(interval))
          .CrashAt(Millis(180), 1)
          .RestartAt(Millis(280), 1)
          .Drain(Millis(250))
          .CheckConvergence();
      specs.push_back(builder.spec());
      intervals.push_back(interval);
    }
    const std::vector<scenario::ScenarioReport> reports = RunAll(specs, jobs);
    for (size_t i = 0; i < reports.size(); ++i) {
      const RunResult& result = reports[i].result;
      std::printf("  %-10s thrpt=%7.2f kreq/s  lat=%.2f ms  %s\n",
                  PointLabel(intervals[i]).c_str(), result.throughput_kreqs,
                  result.mean_latency_ms,
                  reports[i].ok() ? "converged" : "DIVERGED");
      json.AddCurve("restart", PointLabel(intervals[i]), {result});
    }
  }

  json.Write();
  return 0;
}
