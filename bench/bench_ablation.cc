// Ablation benches for the design choices DESIGN.md calls out:
//
//  A. Request batching (BFT-SMaRt style) — sweep the batch cap. The paper's
//     throughput levels are unreachable without batching.
//  B. Unsigned Lion accepts (§5.1) — price the accept phase as signed
//     messages and measure what the trusted-primary optimization saves.
//  C. Cross-cloud distance (§5.3's Peacock motivation) — as the latency gap
//     between the private and public cloud grows, modes that keep agreement
//     inside the public cloud (Dog, and Peacock with its public primary)
//     overtake Lion, whose every phase crosses the clouds.
//  D. Dog proxy-set size — the paper notes "the public cloud might have
//     more than 3m+1 replicas, however 3m+1 is enough... any additional
//     replicas may degrade the performance"; compare P = 3m+1 with larger
//     rented fleets.
//
// Every point is a ScenarioSpec (the builder output with one knob turned)
// run through scenario::RunScenario.

#include <cstdio>
#include <string>

#include "bench/bench_common.h"

namespace seemore {
namespace bench {
namespace {

scenario::ScenarioBuilder LionBase(SeeMoReMode mode, int clients,
                                   SimTime measure) {
  scenario::ScenarioBuilder builder(
      scenario::PaperBaseSpec(/*seed=*/11));
  builder.SeeMoRe(mode, 1, 1)
      .Echo(0, 0)
      .Clients(clients)
      .Warmup(Millis(150))
      .Measure(measure);
  return builder;
}

/// All of one section's points through RunMany, results in spec order.
std::vector<RunResult> SectionPoints(const std::vector<ScenarioSpec>& specs,
                                     int jobs) {
  std::vector<RunResult> results;
  for (const scenario::ScenarioReport& report : RunAll(specs, jobs)) {
    results.push_back(report.result);
  }
  return results;
}

}  // namespace
}  // namespace bench
}  // namespace seemore

int main(int argc, char** argv) {
  using namespace seemore;
  using namespace seemore::bench;
  const bool quick = argc > 1 && std::string(argv[1]) == "--quick";
  const int jobs = ParseJobs(argc, argv);
  const SimTime measure = quick ? Millis(250) : Millis(600);
  const int clients = quick ? 32 : 64;

  BenchResultsJson json("ablation");

  std::printf("=== Ablation A: batching (Lion, c=m=1, %d clients, %d jobs) "
              "===\n",
              clients, jobs);
  const std::vector<int> batches = {1, 4, 16, 64, 512};
  {
    std::vector<ScenarioSpec> specs;
    for (int batch : batches) {
      scenario::ScenarioBuilder builder =
          LionBase(SeeMoReMode::kLion, clients, measure);
      builder.Batching(batch, batch == 1 ? 8 : 2);
      specs.push_back(builder.spec());
    }
    const std::vector<RunResult> results = SectionPoints(specs, jobs);
    for (size_t i = 0; i < results.size(); ++i) {
      std::printf("  batch_max=%-4d thrpt=%7.2f kreq/s  lat=%.2f ms\n",
                  batches[i], results[i].throughput_kreqs,
                  results[i].mean_latency_ms);
      json.AddScalar("batching",
                     "batch_" + std::to_string(batches[i]) + "_kreqs",
                     results[i].throughput_kreqs);
    }
  }

  std::printf(
      "\n=== Ablation B: unsigned vs signed Lion accepts (§5.1, %d clients) "
      "===\n",
      clients);
  {
    std::vector<ScenarioSpec> specs;
    for (bool signed_accepts : {false, true}) {
      scenario::ScenarioBuilder builder =
          LionBase(SeeMoReMode::kLion, clients, measure);
      builder.LionSignAccepts(signed_accepts);
      // Make the asymmetric-crypto price realistic for this ablation (the
      // trusted-primary saving is precisely NOT paying these).
      builder.mutable_spec().costs.sign = Micros(18);
      builder.mutable_spec().costs.verify = Micros(45);
      specs.push_back(builder.spec());
    }
    const std::vector<RunResult> results = SectionPoints(specs, jobs);
    for (size_t i = 0; i < results.size(); ++i) {
      const bool signed_accepts = i == 1;
      std::printf("  accepts=%-8s thrpt=%7.2f kreq/s  lat=%.2f ms\n",
                  signed_accepts ? "signed" : "unsigned",
                  results[i].throughput_kreqs, results[i].mean_latency_ms);
      json.AddScalar("lion_accepts",
                     signed_accepts ? "signed_kreqs" : "unsigned_kreqs",
                     results[i].throughput_kreqs);
    }
  }

  std::printf(
      "\n=== Ablation C: cross-cloud distance (c=m=1, %d clients) ===\n",
      clients);
  std::printf("  %-18s %10s %10s %10s   (mean latency ms)\n",
              "cross-cloud (ms)", "Lion", "Dog", "Peacock");
  const std::vector<int64_t> distances = {90, 1000, 3000, 8000};
  const std::vector<SeeMoReMode> modes = {
      SeeMoReMode::kLion, SeeMoReMode::kDog, SeeMoReMode::kPeacock};
  {
    std::vector<ScenarioSpec> specs;  // distance-major, mode-minor
    for (int64_t cross_us : distances) {
      for (SeeMoReMode mode : modes) {
        scenario::ScenarioBuilder builder =
            LionBase(mode, quick ? 8 : 16, measure);
        builder.CrossCloudLink(Micros(cross_us), Micros(cross_us / 10))
            // Clients sit next to the public cloud (the paper's motivating
            // case).
            .ClientLink(Micros(100), Micros(25));
        specs.push_back(builder.spec());
      }
    }
    const std::vector<RunResult> results = SectionPoints(specs, jobs);
    for (size_t d = 0; d < distances.size(); ++d) {
      double lat[3];
      for (size_t i = 0; i < modes.size(); ++i) {
        const RunResult& r = results[d * modes.size() + i];
        lat[i] = r.mean_latency_ms;
        json.AddScalar("cross_cloud_distance",
                       std::string(scenario::SeeMoReModeToken(modes[i])) +
                           "_" + std::to_string(distances[d]) +
                           "us_latency_ms",
                       r.mean_latency_ms);
      }
      std::printf("  %-18.2f %10.2f %10.2f %10.2f\n",
                  static_cast<double>(distances[d]) / 1000.0, lat[0], lat[1],
                  lat[2]);
    }
  }
  std::printf(
      "  (expected: Lion's latency grows with every cross-cloud phase; "
      "Peacock pays the gap once, so it wins at large distances — §5.3)\n");

  std::printf(
      "\n=== Ablation D: Dog public-cloud size (m=1 => 3m+1=4 proxies; "
      "extra rented nodes are passive) ===\n");
  const std::vector<int> public_sizes = {4, 6, 8, 12};
  {
    std::vector<ScenarioSpec> specs;
    for (int p : public_sizes) {
      scenario::ScenarioBuilder builder =
          LionBase(SeeMoReMode::kDog, clients, measure);
      builder.CloudSizes(-1, p);
      specs.push_back(builder.spec());
    }
    const std::vector<RunResult> results = SectionPoints(specs, jobs);
    for (size_t i = 0; i < results.size(); ++i) {
      const int p = public_sizes[i];
      std::printf("  P=%-3d (N=%d)  thrpt=%7.2f kreq/s  lat=%.2f ms\n", p,
                  specs[i].ResolvedConfig().n(), results[i].throughput_kreqs,
                  results[i].mean_latency_ms);
      json.AddScalar("dog_public_size", "p" + std::to_string(p) + "_kreqs",
                     results[i].throughput_kreqs);
    }
  }
  json.Write();
  return 0;
}
