// Ablation benches for the design choices DESIGN.md calls out:
//
//  A. Request batching (BFT-SMaRt style) — sweep the batch cap. The paper's
//     throughput levels are unreachable without batching.
//  B. Unsigned Lion accepts (§5.1) — price the accept phase as signed
//     messages and measure what the trusted-primary optimization saves.
//  C. Cross-cloud distance (§5.3's Peacock motivation) — as the latency gap
//     between the private and public cloud grows, modes that keep agreement
//     inside the public cloud (Dog, and Peacock with its public primary)
//     overtake Lion, whose every phase crosses the clouds.
//  D. Dog proxy-set size — the paper notes "the public cloud might have
//     more than 3m+1 replicas, however 3m+1 is enough... any additional
//     replicas may degrade the performance"; compare P = 3m+1 with larger
//     rented fleets.
//
// Every point is a ScenarioSpec (the builder output with one knob turned)
// run through scenario::RunScenario.

#include <cstdio>
#include <string>

#include "bench/bench_common.h"

namespace seemore {
namespace bench {
namespace {

scenario::ScenarioBuilder LionBase(SeeMoReMode mode, int clients,
                                   SimTime measure) {
  scenario::ScenarioBuilder builder(
      scenario::PaperBaseSpec(/*seed=*/11));
  builder.SeeMoRe(mode, 1, 1)
      .Echo(0, 0)
      .Clients(clients)
      .Warmup(Millis(150))
      .Measure(measure);
  return builder;
}

RunResult OnePoint(const ScenarioSpec& spec) {
  Result<scenario::ScenarioReport> report = scenario::RunScenario(spec);
  if (!report.ok()) {
    std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
    std::abort();
  }
  return report->result;
}

}  // namespace
}  // namespace bench
}  // namespace seemore

int main(int argc, char** argv) {
  using namespace seemore;
  using namespace seemore::bench;
  const bool quick = argc > 1 && std::string(argv[1]) == "--quick";
  const SimTime measure = quick ? Millis(250) : Millis(600);
  const int clients = quick ? 32 : 64;

  BenchResultsJson json("ablation");

  std::printf("=== Ablation A: batching (Lion, c=m=1, %d clients) ===\n",
              clients);
  for (int batch : {1, 4, 16, 64, 512}) {
    scenario::ScenarioBuilder builder =
        LionBase(SeeMoReMode::kLion, clients, measure);
    builder.Batching(batch, batch == 1 ? 8 : 2);
    RunResult r = OnePoint(builder.spec());
    std::printf("  batch_max=%-4d thrpt=%7.2f kreq/s  lat=%.2f ms\n", batch,
                r.throughput_kreqs, r.mean_latency_ms);
    json.AddScalar("batching", "batch_" + std::to_string(batch) + "_kreqs",
                   r.throughput_kreqs);
  }

  std::printf(
      "\n=== Ablation B: unsigned vs signed Lion accepts (§5.1, %d clients) "
      "===\n",
      clients);
  for (bool signed_accepts : {false, true}) {
    scenario::ScenarioBuilder builder =
        LionBase(SeeMoReMode::kLion, clients, measure);
    builder.LionSignAccepts(signed_accepts);
    // Make the asymmetric-crypto price realistic for this ablation (the
    // trusted-primary saving is precisely NOT paying these).
    builder.mutable_spec().costs.sign = Micros(18);
    builder.mutable_spec().costs.verify = Micros(45);
    RunResult r = OnePoint(builder.spec());
    std::printf("  accepts=%-8s thrpt=%7.2f kreq/s  lat=%.2f ms\n",
                signed_accepts ? "signed" : "unsigned", r.throughput_kreqs,
                r.mean_latency_ms);
    json.AddScalar("lion_accepts",
                   signed_accepts ? "signed_kreqs" : "unsigned_kreqs",
                   r.throughput_kreqs);
  }

  std::printf(
      "\n=== Ablation C: cross-cloud distance (c=m=1, %d clients) ===\n",
      clients);
  std::printf("  %-18s %10s %10s %10s   (mean latency ms)\n",
              "cross-cloud (ms)", "Lion", "Dog", "Peacock");
  for (int64_t cross_us : {90, 1000, 3000, 8000}) {
    double lat[3];
    int i = 0;
    for (SeeMoReMode mode :
         {SeeMoReMode::kLion, SeeMoReMode::kDog, SeeMoReMode::kPeacock}) {
      scenario::ScenarioBuilder builder =
          LionBase(mode, quick ? 8 : 16, measure);
      builder.CrossCloudLink(Micros(cross_us), Micros(cross_us / 10))
          // Clients sit next to the public cloud (the paper's motivating
          // case).
          .ClientLink(Micros(100), Micros(25));
      RunResult r = OnePoint(builder.spec());
      lat[i] = r.mean_latency_ms;
      json.AddScalar("cross_cloud_distance",
                     std::string(scenario::SeeMoReModeToken(mode)) + "_" +
                         std::to_string(cross_us) + "us_latency_ms",
                     r.mean_latency_ms);
      ++i;
    }
    std::printf("  %-18.2f %10.2f %10.2f %10.2f\n",
                static_cast<double>(cross_us) / 1000.0, lat[0], lat[1],
                lat[2]);
  }
  std::printf(
      "  (expected: Lion's latency grows with every cross-cloud phase; "
      "Peacock pays the gap once, so it wins at large distances — §5.3)\n");

  std::printf(
      "\n=== Ablation D: Dog public-cloud size (m=1 => 3m+1=4 proxies; "
      "extra rented nodes are passive) ===\n");
  for (int p : {4, 6, 8, 12}) {
    scenario::ScenarioBuilder builder =
        LionBase(SeeMoReMode::kDog, clients, measure);
    builder.CloudSizes(-1, p);
    const ScenarioSpec& spec = builder.spec();
    RunResult r = OnePoint(spec);
    std::printf("  P=%-3d (N=%d)  thrpt=%7.2f kreq/s  lat=%.2f ms\n", p,
                spec.ResolvedConfig().n(), r.throughput_kreqs,
                r.mean_latency_ms);
    json.AddScalar("dog_public_size", "p" + std::to_string(p) + "_kreqs",
                   r.throughput_kreqs);
  }
  json.Write();
  return 0;
}
