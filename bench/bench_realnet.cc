// Real-network benchmark: the same ScenarioSpec executed twice — once under
// the deterministic simulator and once as actual seemore_node processes
// over localhost TCP (src/rt/) — with the results side by side. The point
// is honesty, not agreement: the simulator charges the calibrated §6 cost
// model on a virtual clock while the real cluster pays host CPU, real
// syscalls and kernel scheduling, so the two columns SHOULD differ; what
// must hold in both runtimes is safety (cross-replica agreement) and the
// protocols' relative ordering.
//
// Systems: SeeMoRe/Lion at (c=1, m=1) — a 6-process cluster — and PBFT at
// f=1 — 4 processes. Emits BENCH_realnet.json.

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "rt/launcher.h"

namespace seemore {
namespace bench {
namespace {

/// The seemore_node binary: --node-binary=..., else a sibling of this
/// executable, else ../tools/seemore_node in the build tree.
std::string ResolveNodeBinary(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--node-binary=", 14) == 0) {
      return argv[i] + 14;
    }
  }
  char buf[4096];
  const ssize_t n = readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0) return "";
  buf[n] = '\0';
  std::string dir(buf);
  const size_t slash = dir.rfind('/');
  dir.resize(slash == std::string::npos ? 0 : slash);
  for (const char* rel : {"/seemore_node", "/../tools/seemore_node"}) {
    const std::string candidate = dir + rel;
    if (access(candidate.c_str(), X_OK) == 0) return candidate;
  }
  return "";
}

struct RealnetSystem {
  std::string label;
  ScenarioSpec spec;
  uint16_t base_port;
};

void PrintSide(const char* runtime, const RunResult& result, bool ok) {
  std::printf("    %-4s  %8.2f kreq/s  p50 %6.2f ms  p99 %6.2f ms  "
              "completed %-7llu  %s\n",
              runtime, result.throughput_kreqs, result.p50_latency_ms,
              result.p99_latency_ms,
              static_cast<unsigned long long>(result.completed),
              ok ? "agreement ok" : "AGREEMENT FAILED");
}

}  // namespace
}  // namespace bench
}  // namespace seemore

int main(int argc, char** argv) {
  using namespace seemore;
  using namespace seemore::bench;
  const bool quick = argc > 1 && std::string(argv[1]) == "--quick";

  const std::string node_binary = ResolveNodeBinary(argc, argv);
  if (node_binary.empty()) {
    std::fprintf(stderr,
                 "bench_realnet: cannot find seemore_node (build tools/ or "
                 "pass --node-binary=PATH)\n");
    return 1;
  }

  std::vector<RealnetSystem> systems;
  {
    RealnetSystem lion;
    lion.label = "lion_c1m1";
    lion.spec = SystemSpec("Lion", /*c=*/1, /*m=*/1);
    lion.base_port = 18700;
    systems.push_back(std::move(lion));

    RealnetSystem pbft;
    pbft.label = "pbft_f1";
    pbft.spec = SystemSpec("BFT", /*c=*/1, /*m=*/1);
    pbft.spec.topology.f = 1;  // 4 processes on localhost, not 7
    pbft.base_port = 18800;
    systems.push_back(std::move(pbft));
  }

  // Real milliseconds on the tcp side, virtual on the sim side: keep the
  // windows identical so the columns measure the same experiment.
  const SimTime warmup = quick ? Millis(100) : Millis(200);
  const SimTime measure = quick ? Millis(400) : Seconds(1);
  std::printf(
      "real-network bench (%s mode): simulator vs localhost processes\n",
      quick ? "quick" : "full");

  BenchResultsJson json("realnet");
  bool all_safe = true;
  for (RealnetSystem& system : systems) {
    system.spec.name = "realnet-" + system.label;
    system.spec.clients = 8;
    system.spec.workload.kind = scenario::WorkloadKind::kEcho;
    system.spec.workload.request_kb = 0;
    system.spec.workload.reply_kb = 0;
    system.spec.plan.warmup = warmup;
    system.spec.plan.measure = measure;
    system.spec.plan.drain = Millis(100);

    std::printf("  %s (%s)\n", system.label.c_str(),
                system.spec.ResolvedConfig().ToString().c_str());

    Result<scenario::ScenarioReport> sim =
        scenario::RunScenario(system.spec);
    if (!sim.ok()) {
      std::fprintf(stderr, "sim run failed: %s\n",
                   sim.status().ToString().c_str());
      return 1;
    }
    PrintSide("sim", sim->result, sim->ok());

    rt::LauncherOptions launcher;
    launcher.node_binary = node_binary;
    launcher.base_port = system.base_port;
    Result<rt::TcpRunReport> tcp =
        rt::RunTcpScenario(system.spec, launcher);
    if (!tcp.ok()) {
      std::fprintf(stderr, "tcp run failed: %s\n",
                   tcp.status().ToString().c_str());
      return 1;
    }
    PrintSide("tcp", tcp->result, tcp->ok());
    all_safe = all_safe && sim->ok() && tcp->ok();

    json.AddCurve(system.label, "sim", {sim->result});
    json.AddCurve(system.label, "tcp", {tcp->result});
    json.AddScalar(system.label, "sim_agreement_ok", sim->ok() ? 1.0 : 0.0);
    json.AddScalar(system.label, "tcp_agreement_ok", tcp->ok() ? 1.0 : 0.0);
    // The honest gap: real processes pay host CPU + kernel for what the
    // simulator only accounts virtually.
    if (tcp->result.throughput_kreqs > 0) {
      json.AddScalar(system.label, "sim_over_tcp_throughput",
                     sim->result.throughput_kreqs /
                         tcp->result.throughput_kreqs);
    }
  }
  json.Write();

  if (!all_safe) {
    std::fprintf(stderr, "FAIL: an agreement/convergence check failed\n");
    return 1;
  }
  return 0;
}
