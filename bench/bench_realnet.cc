// Real-network benchmark: the same ScenarioSpec executed twice — once under
// the deterministic simulator and once as actual seemore_node processes
// over localhost TCP (src/rt/) — with the results side by side. The point
// is honesty, not agreement: the simulator charges the calibrated §6 cost
// model on a virtual clock while the real cluster pays host CPU, real
// syscalls and kernel scheduling, so the two columns SHOULD differ; what
// must hold in both runtimes is safety (cross-replica agreement) and the
// protocols' relative ordering.
//
// Systems: SeeMoRe/Lion at (c=1, m=1) — a 6-process cluster — and PBFT at
// f=1 — 4 processes. Emits BENCH_realnet.json.

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_common.h"
#include "rt/launcher.h"
#include "util/json.h"

namespace seemore {
namespace bench {
namespace {

/// The seemore_node binary: --node-binary=..., else a sibling of this
/// executable, else ../tools/seemore_node in the build tree.
std::string ResolveNodeBinary(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--node-binary=", 14) == 0) {
      return argv[i] + 14;
    }
  }
  char buf[4096];
  const ssize_t n = readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0) return "";
  buf[n] = '\0';
  std::string dir(buf);
  const size_t slash = dir.rfind('/');
  dir.resize(slash == std::string::npos ? 0 : slash);
  for (const char* rel : {"/seemore_node", "/../tools/seemore_node"}) {
    const std::string candidate = dir + rel;
    if (access(candidate.c_str(), X_OK) == 0) return candidate;
  }
  return "";
}

struct RealnetSystem {
  std::string label;
  ScenarioSpec spec;
  uint16_t base_port;
};

void PrintSide(const char* runtime, const RunResult& result, bool ok) {
  std::printf("    %-4s  %8.2f kreq/s  p50 %6.2f ms  p99 %6.2f ms  "
              "completed %-7llu  %s\n",
              runtime, result.throughput_kreqs, result.p50_latency_ms,
              result.p99_latency_ms,
              static_cast<unsigned long long>(result.completed),
              ok ? "agreement ok" : "AGREEMENT FAILED");
}

/// One scalar of a run, addressed by (section, name) — what the guard
/// compares against the checked-in baseline.
struct BenchMetric {
  std::string section;
  std::string name;
  double value = 0.0;
};

double NetField(const Json& net, const char* key) {
  const Json* field = net.Find(key);
  return field != nullptr && field->is_number() ? field->AsDouble() : 0.0;
}

// --- regression guard (mirrors bench_engine's) ------------------------------
/// Pull every section scalar (and the config quick_mode flag) out of a
/// BENCH_realnet.json document. Returns false on any shape mismatch.
bool ReadBaseline(const Json& root, std::vector<BenchMetric>* metrics,
                  bool* baseline_quick) {
  const Json* sections = root.Find("sections");
  if (sections == nullptr || !sections->is_array()) return false;
  for (const Json& section : sections->items()) {
    const Json* label = section.Find("label");
    const Json* scalars = section.Find("scalars");
    if (label == nullptr || scalars == nullptr || !scalars->is_array()) {
      continue;
    }
    for (const Json& scalar : scalars->items()) {
      const Json* name = scalar.Find("name");
      const Json* value = scalar.Find("value");
      if (name == nullptr || value == nullptr || !value->is_number()) {
        continue;
      }
      if (label->AsString() == "config" && name->AsString() == "quick_mode") {
        *baseline_quick = value->AsDouble() != 0.0;
        continue;
      }
      metrics->push_back(
          {label->AsString(), name->AsString(), value->AsDouble()});
    }
  }
  return !metrics->empty();
}

/// Compare this run against the checked-in baseline: a >10% drop on any
/// system's tcp_kreqs fails the build. Everything else prints as
/// informational — latency and syscall mixes are too machine-dependent to
/// gate on, but the end-to-end tcp throughput is the number this subsystem
/// exists to defend. Exit code is the CI contract — keep it 0/1.
int GuardAgainstBaseline(const char* path, bool quick,
                         const std::vector<BenchMetric>& current) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "guard: cannot read baseline %s\n", path);
    return 1;
  }
  std::stringstream buf;
  buf << in.rdbuf();
  Result<Json> parsed = Json::Parse(buf.str());
  if (!parsed.ok()) {
    std::fprintf(stderr, "guard: baseline %s is not valid JSON: %s\n", path,
                 parsed.status().ToString().c_str());
    return 1;
  }
  std::vector<BenchMetric> baseline;
  bool baseline_quick = false;
  if (!ReadBaseline(*parsed, &baseline, &baseline_quick)) {
    std::fprintf(stderr, "guard: baseline %s has no scalars\n", path);
    return 1;
  }
  if (baseline_quick != quick) {
    std::fprintf(stderr,
                 "guard: baseline was recorded in %s mode but this run is %s "
                 "mode; refusing to compare\n",
                 baseline_quick ? "quick" : "full", quick ? "quick" : "full");
    return 1;
  }
  constexpr double kTolerance = 0.10;
  constexpr const char* kGuarded = "tcp_kreqs";
  int failures = 0;
  bool saw_guarded = false;
  for (const BenchMetric& ref : baseline) {
    double now = -1.0;
    for (const BenchMetric& cur : current) {
      if (cur.section == ref.section && cur.name == ref.name) now = cur.value;
    }
    const bool enforced = ref.name == kGuarded;
    if (now < 0.0) {
      std::fprintf(stderr, "guard: metric %s/%s missing from this run\n",
                   ref.section.c_str(), ref.name.c_str());
      if (enforced) ++failures;
      continue;
    }
    const double floor = ref.value * (1.0 - kTolerance);
    const bool ok = now >= floor;
    std::printf(
        "guard: %-12s %-24s %12.2f vs baseline %12.2f (floor %10.2f) %s%s\n",
        ref.section.c_str(), ref.name.c_str(), now, ref.value, floor,
        ok ? "ok" : "below floor", enforced ? "" : " [informational]");
    if (enforced) {
      saw_guarded = true;
      if (!ok) ++failures;
    }
  }
  if (!saw_guarded) {
    std::fprintf(stderr, "guard: baseline %s lacks the %s metric\n", path,
                 kGuarded);
    return 1;
  }
  if (failures > 0) {
    std::fprintf(stderr,
                 "guard: tcp throughput regressed >%.0f%% vs %s — if the "
                 "slowdown is intentional, refresh the baseline from a fresh "
                 "BENCH_realnet.json\n",
                 kTolerance * 100, path);
    return 1;
  }
  std::printf("guard: %s within %.0f%% of baseline on every system\n",
              kGuarded, kTolerance * 100);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace seemore

int main(int argc, char** argv) {
  using namespace seemore;
  using namespace seemore::bench;
  bool quick = false;
  const char* guard_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strncmp(argv[i], "--guard=", 8) == 0) guard_path = argv[i] + 8;
  }

  const std::string node_binary = ResolveNodeBinary(argc, argv);
  if (node_binary.empty()) {
    std::fprintf(stderr,
                 "bench_realnet: cannot find seemore_node (build tools/ or "
                 "pass --node-binary=PATH)\n");
    return 1;
  }

  std::vector<RealnetSystem> systems;
  {
    RealnetSystem lion;
    lion.label = "lion_c1m1";
    lion.spec = SystemSpec("Lion", /*c=*/1, /*m=*/1);
    lion.base_port = 18700;
    systems.push_back(std::move(lion));

    RealnetSystem pbft;
    pbft.label = "pbft_f1";
    pbft.spec = SystemSpec("BFT", /*c=*/1, /*m=*/1);
    pbft.spec.topology.f = 1;  // 4 processes on localhost, not 7
    pbft.base_port = 18800;
    systems.push_back(std::move(pbft));
  }

  // Real milliseconds on the tcp side, virtual on the sim side: keep the
  // windows identical so the columns measure the same experiment.
  const SimTime warmup = quick ? Millis(100) : Millis(200);
  const SimTime measure = quick ? Millis(400) : Seconds(1);
  std::printf(
      "real-network bench (%s mode): simulator vs localhost processes\n",
      quick ? "quick" : "full");

  BenchResultsJson json("realnet");
  std::vector<BenchMetric> metrics;  // mirror of every AddScalar, for --guard
  auto add_scalar = [&](const std::string& section, const std::string& name,
                        double value) {
    json.AddScalar(section, name, value);
    metrics.push_back({section, name, value});
  };
  bool all_safe = true;
  for (RealnetSystem& system : systems) {
    system.spec.name = "realnet-" + system.label;
    system.spec.clients = 8;
    system.spec.workload.kind = scenario::WorkloadKind::kEcho;
    system.spec.workload.request_kb = 0;
    system.spec.workload.reply_kb = 0;
    system.spec.plan.warmup = warmup;
    system.spec.plan.measure = measure;
    system.spec.plan.drain = Millis(100);

    std::printf("  %s (%s)\n", system.label.c_str(),
                system.spec.ResolvedConfig().ToString().c_str());

    Result<scenario::ScenarioReport> sim =
        scenario::RunScenario(system.spec);
    if (!sim.ok()) {
      std::fprintf(stderr, "sim run failed: %s\n",
                   sim.status().ToString().c_str());
      return 1;
    }
    PrintSide("sim", sim->result, sim->ok());

    rt::LauncherOptions launcher;
    launcher.node_binary = node_binary;
    launcher.base_port = system.base_port;
    Result<rt::TcpRunReport> tcp =
        rt::RunTcpScenario(system.spec, launcher);
    if (!tcp.ok()) {
      std::fprintf(stderr, "tcp run failed: %s\n",
                   tcp.status().ToString().c_str());
      return 1;
    }
    PrintSide("tcp", tcp->result, tcp->ok());
    all_safe = all_safe && sim->ok() && tcp->ok();

    json.AddCurve(system.label, "sim", {sim->result});
    json.AddCurve(system.label, "tcp", {tcp->result});
    add_scalar(system.label, "sim_agreement_ok", sim->ok() ? 1.0 : 0.0);
    add_scalar(system.label, "tcp_agreement_ok", tcp->ok() ? 1.0 : 0.0);
    add_scalar(system.label, "sim_kreqs", sim->result.throughput_kreqs);
    add_scalar(system.label, "tcp_kreqs", tcp->result.throughput_kreqs);
    // The honest gap: real processes pay host CPU + kernel for what the
    // simulator only accounts virtually.
    if (tcp->result.throughput_kreqs > 0) {
      add_scalar(system.label, "sim_over_tcp_throughput",
                 sim->result.throughput_kreqs / tcp->result.throughput_kreqs);
    }
    // Wire-path efficiency ledger, merged across the launcher and every
    // node process (DESIGN.md §12): how many frames each writev carried,
    // how much multicast fan-out reused one encode, and what fraction of
    // received bodies were zero-copy views of a read block.
    const Json& net = tcp->net;
    const double writevs = NetField(net, "writev_syscalls");
    const double frames = NetField(net, "frames_sent");
    const double encodes = NetField(net, "multicast_encodes");
    const double enqueues = NetField(net, "multicast_enqueues");
    const double aliased = NetField(net, "rx_frames_aliased");
    const double copied = NetField(net, "rx_frames_copied");
    add_scalar(system.label, "tcp_read_syscalls",
               NetField(net, "read_syscalls"));
    add_scalar(system.label, "tcp_writev_syscalls", writevs);
    add_scalar(system.label, "tcp_frames_per_writev",
               writevs > 0 ? frames / writevs : 0.0);
    add_scalar(system.label, "tcp_multicast_reuse",
               encodes > 0 ? enqueues / encodes : 0.0);
    add_scalar(system.label, "tcp_rx_aliased_frac",
               aliased + copied > 0 ? aliased / (aliased + copied) : 1.0);
    std::printf(
        "    wire  %8.0f reads  %8.0f writevs  %5.2f frames/writev  "
        "%4.2f mcast reuse  %5.1f%% rx aliased\n",
        NetField(net, "read_syscalls"), writevs,
        writevs > 0 ? frames / writevs : 0.0,
        encodes > 0 ? enqueues / encodes : 0.0,
        aliased + copied > 0 ? 100.0 * aliased / (aliased + copied) : 100.0);
  }
  add_scalar("config", "quick_mode", quick ? 1.0 : 0.0);
  json.Write();

  if (!all_safe) {
    std::fprintf(stderr, "FAIL: an agreement/convergence check failed\n");
    return 1;
  }
  if (guard_path != nullptr) {
    return GuardAgainstBaseline(guard_path, quick, metrics);
  }
  return 0;
}
