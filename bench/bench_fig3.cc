// Figure 3 (§6.2, changing payload size): the base case c=m=1 re-run with
// the 0/4 micro-benchmark (0 KB requests, 4 KB replies) and the 4/0
// micro-benchmark (4 KB requests, 0 KB replies). The paper's observation to
// reproduce: request size hurts every protocol more than reply size
// (requests are re-transmitted between replicas; replies travel once), and
// the relative ordering of Figure 2(a) persists.

#include <cstdio>
#include <string>

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace seemore;
  using namespace seemore::bench;
  const bool quick = argc > 1 && std::string(argv[1]) == "--quick";
  const int jobs = ParseJobs(argc, argv);
  const std::vector<int> clients =
      quick ? std::vector<int>{4, 32} : std::vector<int>{2, 8, 32, 64, 96};
  const SimTime warmup = quick ? Millis(100) : Millis(150);
  const SimTime measure = quick ? Millis(300) : Millis(500);

  struct PayloadCase {
    const char* label;
    uint32_t request_kb;
    uint32_t reply_kb;
  };
  const PayloadCase cases[] = {{"0/4 (4 KB replies)", 0, 4},
                               {"4/0 (4 KB requests)", 4, 0}};

  std::printf("Figure 3 reproduction: payload benchmarks, c=1 m=1\n");
  BenchResultsJson json("fig3");
  for (const PayloadCase& payload : cases) {
    std::printf("\n=== Fig 3: benchmark %s ===\n", payload.label);
    for (const std::string& system : scenario::PaperSystemNames()) {
      ScenarioSpec spec = SystemSpec(system, /*c=*/1, /*m=*/1);
      spec.workload.kind = scenario::WorkloadKind::kEcho;
      spec.workload.request_kb = payload.request_kb;
      spec.workload.reply_kb = payload.reply_kb;
      std::vector<RunResult> curve =
          RunCurve(spec, clients, warmup, measure, jobs);
      PrintCurve(system, curve);
      std::printf("%-10s peak=%.2f kreq/s\n", system.c_str(),
                  PeakThroughput(curve));
      json.AddCurve(payload.label, system, curve);
      json.AddScalar(payload.label, system + "_peak_kreqs",
                     PeakThroughput(curve));
    }
  }
  json.Write();
  return 0;
}
