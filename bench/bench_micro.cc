// Google-benchmark microbenchmarks for the substrates: crypto primitives,
// wire serialization, the discrete-event simulator and the network layer.
// These quantify the real (host) cost of the building blocks, independent of
// the virtual-time cost model.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "consensus/batch.h"
#include "crypto/hmac_sha256.h"
#include "crypto/keystore.h"
#include "crypto/sha256.h"
#include "net/network.h"
#include "sim/simulator.h"
#include "smr/kv_store.h"

namespace seemore {
namespace {

void BM_Sha256(benchmark::State& state) {
  const size_t size = static_cast<size_t>(state.range(0));
  Bytes data(size, 0xab);
  for (auto _ : state) {
    auto digest = Sha256::Hash(data);
    benchmark::DoNotOptimize(digest);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations() * size));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(1024)->Arg(64 * 1024);

void BM_HmacSha256(benchmark::State& state) {
  const size_t size = static_cast<size_t>(state.range(0));
  Bytes key(32, 0x11);
  Bytes data(size, 0xcd);
  for (auto _ : state) {
    auto tag = HmacSha256::Mac(key, data);
    benchmark::DoNotOptimize(tag);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations() * size));
}
BENCHMARK(BM_HmacSha256)->Arg(64)->Arg(4096);

void BM_SignVerify(benchmark::State& state) {
  KeyStore store(7);
  Signer signer(0, store);
  Bytes msg(128, 0x42);
  for (auto _ : state) {
    Signature sig = signer.Sign(msg);
    bool ok = store.Verify(0, msg, sig);
    benchmark::DoNotOptimize(ok);
  }
}
BENCHMARK(BM_SignVerify);

void BM_BatchEncodeDecode(benchmark::State& state) {
  const int requests = static_cast<int>(state.range(0));
  KeyStore store(3);
  Signer signer(kClientIdBase, store);
  Batch batch;
  for (int i = 0; i < requests; ++i) {
    Request request;
    request.client = kClientIdBase;
    request.timestamp = static_cast<uint64_t>(i + 1);
    request.op = MakePut("key-" + std::to_string(i), "value");
    request.Sign(signer);
    batch.requests.push_back(std::move(request));
  }
  for (auto _ : state) {
    Bytes encoded = batch.Encode();
    auto decoded = Batch::Decode(encoded);
    benchmark::DoNotOptimize(decoded);
  }
}
BENCHMARK(BM_BatchEncodeDecode)->Arg(1)->Arg(16)->Arg(256);

void BM_SimulatorEvents(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    Simulator sim(1);
    uint64_t counter = 0;
    for (int i = 0; i < 10000; ++i) {
      sim.Schedule(static_cast<SimTime>(sim.rng().NextBounded(1000000)),
                   [&counter] { ++counter; });
    }
    state.ResumeTiming();
    sim.Run();
    benchmark::DoNotOptimize(counter);
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_SimulatorEvents);

class CountingHandler : public MessageHandler {
 public:
  void OnMessage(PrincipalId, Payload) override { ++count; }
  uint64_t count = 0;
};

void BM_NetworkDelivery(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    Simulator sim(1);
    NetworkConfig config;
    SimNetwork net(&sim, config);
    CountingHandler handlers[4];
    for (int i = 0; i < 4; ++i) {
      net.AddNode(i, Zone::kPrivate, &handlers[i], nullptr);
    }
    Bytes payload(256, 0x77);
    state.ResumeTiming();
    for (int round = 0; round < 1000; ++round) {
      net.Multicast(0, {1, 2, 3}, payload);
    }
    sim.Run();
    benchmark::DoNotOptimize(handlers[1].count);
  }
  state.SetItemsProcessed(state.iterations() * 3000);
}
BENCHMARK(BM_NetworkDelivery);

void BM_KvExecute(benchmark::State& state) {
  KvStateMachine kv;
  uint64_t i = 0;
  for (auto _ : state) {
    Bytes result = kv.Execute(MakePut("key-" + std::to_string(i % 1000),
                                      "value-" + std::to_string(i)));
    benchmark::DoNotOptimize(result);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_KvExecute);

}  // namespace
}  // namespace seemore

// BENCHMARK_MAIN, plus a default machine-readable output (BENCH_micro.json)
// when the caller does not pass --benchmark_out themselves — the perf
// trajectory of the substrates is tracked across PRs.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind("--benchmark_out", 0) == 0) has_out = true;
  }
  static char out_flag[] = "--benchmark_out=BENCH_micro.json";
  static char fmt_flag[] = "--benchmark_out_format=json";
  if (!has_out) {
    args.push_back(out_flag);
    args.push_back(fmt_flag);
  }
  int new_argc = static_cast<int>(args.size());
  benchmark::Initialize(&new_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(new_argc, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
