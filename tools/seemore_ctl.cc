// seemore_ctl: scriptable scenario driver for the simulated hybrid cloud,
// in the spirit of RocksDB's db_bench. The tool itself is a thin shell: it
// translates flags (or a JSON file, or a registry name) into a declarative
// scenario::ScenarioSpec and hands it to scenario::RunScenario, which owns
// cluster construction, the fault/switch/partition schedule and reporting.
//
// Examples:
//   seemore_ctl --protocol=seemore --mode=lion --c=1 --m=1 --clients=32
//   seemore_ctl --protocol=seemore --mode=lion --crash=0@100 --recover=0@400
//   seemore_ctl --protocol=seemore --switch=dog@150 --switch=peacock@400
//   seemore_ctl --protocol=bft --f=2 --byzantine=5:wrongvotes@0 --drop=0.02
//   seemore_ctl --list-scenarios
//   seemore_ctl --scenario=fig4-primary-crash --quick
//   seemore_ctl --smoke --jobs=8 --report-dir=reports
//   seemore_ctl --c=2 --m=1 --dump-spec > my.json; seemore_ctl --scenario=my.json
//
// A spec dumped with --dump-spec re-runs via --scenario= to a bit-identical
// report under the same seed — including with --jobs > 1: every sweep point
// runs on its own cluster with a spec-derived seed, so parallel reports are
// bit-identical to serial ones (tests/parallel_sweep_test.cc).

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "rt/launcher.h"
#include "scenario/builder.h"
#include "scenario/engine.h"
#include "scenario/registry.h"
#include "util/flags.h"
#include "util/thread_pool.h"

namespace seemore {
namespace {

using scenario::ScenarioReport;
using scenario::ScenarioSpec;

/// "<id>@<ms>" -> (id, time).
Result<std::pair<int, SimTime>> ParseAt(const std::string& spec) {
  const std::vector<std::string> parts = SplitString(spec, '@');
  if (parts.size() != 2) {
    return Status::InvalidArgument("expected <what>@<ms>, got: " + spec);
  }
  return std::make_pair(std::atoi(parts[0].c_str()),
                        Millis(std::atoll(parts[1].c_str())));
}

/// Flag -> schedule translation for the <id>@<ms> event families.
Status ParseReplicaEvents(const FlagSet& flags, const std::string& flag,
                          scenario::EventKind kind,
                          scenario::ScenarioBuilder& builder) {
  for (const std::string& spec : SplitString(flags.GetString(flag), ',')) {
    SEEMORE_ASSIGN_OR_RETURN(auto at, ParseAt(spec));
    switch (kind) {
      case scenario::EventKind::kCrash:
        builder.CrashAt(at.second, at.first);
        break;
      case scenario::EventKind::kRecover:
        builder.RecoverAt(at.second, at.first);
        break;
      case scenario::EventKind::kRestart:
        builder.RestartAt(at.second, at.first);
        break;
      case scenario::EventKind::kPowerLoss:
        builder.PowerLossAt(at.second, at.first);
        break;
      default:
        return Status::Internal("bad replica-event kind");
    }
  }
  return Status::Ok();
}

/// "<id>:<arg>@<ms>" schedules for the log-tamper events (truncate-log's
/// byte count / corrupt-log's bit-flip offset).
Status ParseTamperEvents(const FlagSet& flags, const std::string& flag,
                         scenario::EventKind kind,
                         scenario::ScenarioBuilder& builder) {
  for (const std::string& spec : SplitString(flags.GetString(flag), ',')) {
    const std::vector<std::string> head = SplitString(spec, ':');
    const std::vector<std::string> tail =
        head.size() == 2 ? SplitString(head[1], '@') : std::vector<std::string>();
    if (tail.size() != 2) {
      return Status::InvalidArgument("expected --" + flag +
                                     "=<id>:<arg>@<ms>, got: " + spec);
    }
    const int replica = std::atoi(head[0].c_str());
    const int64_t arg = std::atoll(tail[0].c_str());
    const SimTime at = Millis(std::atoll(tail[1].c_str()));
    if (kind == scenario::EventKind::kTruncateLog) {
      builder.TruncateLogAt(at, replica, arg);
    } else {
      builder.CorruptLogAt(at, replica, arg);
    }
  }
  return Status::Ok();
}

/// Times-only schedules ("<ms>[,<ms>...]") for partition / heal /
/// crash-primary.
Status ParseTimeEvents(const FlagSet& flags, const std::string& flag,
                       scenario::EventKind kind,
                       scenario::ScenarioBuilder& builder) {
  for (const std::string& spec : SplitString(flags.GetString(flag), ',')) {
    char* end = nullptr;
    const long long ms = std::strtoll(spec.c_str(), &end, 10);
    if (end == spec.c_str() || *end != '\0') {
      return Status::InvalidArgument("expected --" + flag +
                                     "=<ms>[,<ms>...], got: " + spec);
    }
    switch (kind) {
      case scenario::EventKind::kCrashPrimary:
        builder.CrashPrimaryAt(Millis(ms));
        break;
      case scenario::EventKind::kPartitionClouds:
        builder.PartitionCloudsAt(Millis(ms));
        break;
      case scenario::EventKind::kHealClouds:
        builder.HealCloudsAt(Millis(ms));
        break;
      default:
        return Status::Internal("bad time-event kind");
    }
  }
  return Status::Ok();
}

/// "<from>-<to>@<ms>" directed-link schedules for cut-link / restore-link.
Status ParseLinkEvents(const FlagSet& flags, const std::string& flag,
                       scenario::EventKind kind,
                       scenario::ScenarioBuilder& builder) {
  for (const std::string& spec : SplitString(flags.GetString(flag), ',')) {
    const std::vector<std::string> at_parts = SplitString(spec, '@');
    const std::vector<std::string> ends =
        at_parts.size() == 2 ? SplitString(at_parts[0], '-')
                             : std::vector<std::string>();
    if (ends.size() != 2) {
      return Status::InvalidArgument("expected --" + flag +
                                     "=<from>-<to>@<ms>, got: " + spec);
    }
    const int from = std::atoi(ends[0].c_str());
    const int to = std::atoi(ends[1].c_str());
    const SimTime at = Millis(std::atoll(at_parts[1].c_str()));
    if (kind == scenario::EventKind::kCutLink) {
      builder.CutLinkAt(at, from, to);
    } else {
      builder.RestoreLinkAt(at, from, to);
    }
  }
  return Status::Ok();
}

/// "<from>-<to>:<delay_us>:<jitter_us>:<ppm>@<ms>" shaping schedules.
Status ParseShapeEvents(const FlagSet& flags,
                        scenario::ScenarioBuilder& builder) {
  for (const std::string& spec :
       SplitString(flags.GetString("shape-link"), ',')) {
    const std::vector<std::string> at_parts = SplitString(spec, '@');
    const std::vector<std::string> fields =
        at_parts.size() == 2 ? SplitString(at_parts[0], ':')
                             : std::vector<std::string>();
    const std::vector<std::string> ends =
        fields.size() == 4 ? SplitString(fields[0], '-')
                           : std::vector<std::string>();
    if (ends.size() != 2) {
      return Status::InvalidArgument(
          "expected --shape-link=<from>-<to>:<delay_us>:<jitter_us>:<ppm>"
          "@<ms>, got: " +
          spec);
    }
    builder.ShapeLinkAt(Millis(std::atoll(at_parts[1].c_str())),
                        std::atoi(ends[0].c_str()),
                        std::atoi(ends[1].c_str()),
                        Micros(std::atoll(fields[1].c_str())),
                        Micros(std::atoll(fields[2].c_str())),
                        std::atoll(fields[3].c_str()));
  }
  return Status::Ok();
}

Result<ScenarioSpec> SpecFromFlags(const FlagSet& flags) {
  scenario::ScenarioBuilder builder;
  builder.Name("cli");

  SEEMORE_ASSIGN_OR_RETURN(
      ProtocolKind protocol,
      scenario::ProtocolKindFromToken(flags.GetString("protocol")));
  SEEMORE_ASSIGN_OR_RETURN(
      SeeMoReMode mode, scenario::SeeMoReModeFromToken(flags.GetString("mode")));
  const int c = static_cast<int>(flags.GetInt("c"));
  const int m = static_cast<int>(flags.GetInt("m"));
  switch (protocol) {
    case ProtocolKind::kSeeMoRe:
      builder.SeeMoRe(mode, c, m);
      break;
    case ProtocolKind::kCft:
      builder.Cft(static_cast<int>(flags.GetInt("f")));
      break;
    case ProtocolKind::kBft:
      builder.Bft(static_cast<int>(flags.GetInt("f")));
      break;
    case ProtocolKind::kSUpRight:
      builder.SUpRight(c, m);
      break;
  }
  builder.CloudSizes(
      flags.WasSet("s") ? static_cast<int>(flags.GetInt("s")) : -1,
      flags.WasSet("p") ? static_cast<int>(flags.GetInt("p")) : -1);

  builder.Batching(static_cast<int>(flags.GetInt("batch")),
                   static_cast<int>(flags.GetInt("pipeline")))
      .CheckpointPeriod(static_cast<int>(flags.GetInt("checkpoint-period")))
      .ViewChangeTimeout(Millis(flags.GetInt("vc-timeout-ms")))
      .Drop(flags.GetDouble("drop"))
      .Duplicate(flags.GetDouble("duplicate"))
      .Seed(static_cast<uint64_t>(flags.GetInt("seed")))
      .Clients(static_cast<int>(flags.GetInt("clients")))
      .Warmup(Millis(flags.GetInt("warmup-ms")))
      .Measure(Millis(flags.GetInt("duration-ms")))
      .Drain(Millis(flags.GetInt("drain-ms")));
  // Only the base latency is a flag; jitter keeps the NetworkConfig default.
  builder.mutable_spec().net.cross_cloud.base =
      Micros(flags.GetInt("cross-cloud-us"));

  SEEMORE_ASSIGN_OR_RETURN(
      scenario::WorkloadKind workload,
      scenario::WorkloadKindFromToken(flags.GetString("workload")));
  if (workload == scenario::WorkloadKind::kKv) {
    builder.Kv(static_cast<int>(flags.GetInt("keys")), 0.5);
  } else {
    builder.Echo(static_cast<uint32_t>(flags.GetInt("req-kb")),
                 static_cast<uint32_t>(flags.GetInt("rep-kb")));
  }
  if (flags.GetBool("timeline")) {
    builder.Timeline(Millis(flags.GetInt("timeline-bucket-ms")));
  }
  if (flags.GetBool("check-convergence")) {
    builder.CheckConvergence();
    // The convergence verdict is only meaningful at quiescence (spec.h):
    // without a drain, replicas legitimately differ by in-flight commits at
    // the measurement cutoff. Default to a drain when none was requested.
    if (flags.GetInt("drain-ms") == 0) builder.Drain(Millis(200));
  }

  // Fault / switch / partition schedule.
  SEEMORE_RETURN_IF_ERROR(ParseReplicaEvents(
      flags, "crash", scenario::EventKind::kCrash, builder));
  SEEMORE_RETURN_IF_ERROR(ParseReplicaEvents(
      flags, "recover", scenario::EventKind::kRecover, builder));
  for (const std::string& spec :
       SplitString(flags.GetString("byzantine"), ',')) {
    // <id>:<behaviour[+behaviour]>@<ms>
    const std::vector<std::string> head = SplitString(spec, ':');
    if (head.size() != 2) {
      return Status::InvalidArgument(
          "expected --byzantine=<id>:<kind>@<ms>, got: " + spec);
    }
    SEEMORE_ASSIGN_OR_RETURN(
        auto at, ParseAt(head[0] + "@" + SplitString(head[1], '@').back()));
    SEEMORE_ASSIGN_OR_RETURN(
        uint32_t behaviours,
        scenario::ByzFlagsFromToken(SplitString(head[1], '@').front()));
    builder.ByzantineAt(at.second, at.first, behaviours);
  }
  for (const std::string& spec : SplitString(flags.GetString("switch"), ',')) {
    // <mode>@<ms>
    const std::vector<std::string> parts = SplitString(spec, '@');
    if (parts.size() != 2) {
      return Status::InvalidArgument("expected --switch=<mode>@<ms>, got: " +
                                     spec);
    }
    SEEMORE_ASSIGN_OR_RETURN(SeeMoReMode target,
                             scenario::SeeMoReModeFromToken(parts[0]));
    builder.SwitchAt(Millis(std::atoll(parts[1].c_str())), target);
  }
  SEEMORE_RETURN_IF_ERROR(ParseTimeEvents(
      flags, "crash-primary", scenario::EventKind::kCrashPrimary, builder));
  SEEMORE_RETURN_IF_ERROR(ParseTimeEvents(
      flags, "partition", scenario::EventKind::kPartitionClouds, builder));
  SEEMORE_RETURN_IF_ERROR(ParseTimeEvents(
      flags, "heal", scenario::EventKind::kHealClouds, builder));
  SEEMORE_RETURN_IF_ERROR(ParseLinkEvents(
      flags, "cut-link", scenario::EventKind::kCutLink, builder));
  SEEMORE_RETURN_IF_ERROR(ParseLinkEvents(
      flags, "restore-link", scenario::EventKind::kRestoreLink, builder));
  SEEMORE_RETURN_IF_ERROR(ParseShapeEvents(flags, builder));

  // Durability + the restart/fault-injection family it enables.
  if (flags.GetBool("durable") || flags.WasSet("durable-fsync") ||
      flags.WasSet("durable-segment-kb")) {
    builder.Durability(
        static_cast<int>(flags.GetInt("durable-fsync")),
        static_cast<int64_t>(flags.GetInt("durable-segment-kb")) * 1024);
  }
  SEEMORE_RETURN_IF_ERROR(ParseReplicaEvents(
      flags, "restart", scenario::EventKind::kRestart, builder));
  SEEMORE_RETURN_IF_ERROR(ParseReplicaEvents(
      flags, "power-loss", scenario::EventKind::kPowerLoss, builder));
  SEEMORE_RETURN_IF_ERROR(ParseTamperEvents(
      flags, "truncate-log", scenario::EventKind::kTruncateLog, builder));
  SEEMORE_RETURN_IF_ERROR(ParseTamperEvents(
      flags, "corrupt-log", scenario::EventKind::kCorruptLog, builder));

  return builder.spec();
}

/// Resolve --scenario=<registry name | file.json>.
Result<ScenarioSpec> LoadScenario(const std::string& ref) {
  Result<ScenarioSpec> named = scenario::FindScenario(ref);
  if (named.ok()) return named;
  std::ifstream file(ref);
  if (!file) {
    return Status::NotFound("\"" + ref +
                            "\" is neither a registered scenario "
                            "(--list-scenarios) nor a readable file");
  }
  std::ostringstream text;
  text << file.rdbuf();
  return ScenarioSpec::FromJsonText(text.str());
}

void PrintReport(const FlagSet& flags, const ScenarioReport& report) {
  for (const scenario::AppliedEvent& event : report.events) {
    std::printf("%s\n", event.description.c_str());
  }
  std::printf("\n%s\n", report.result.ToString().c_str());

  if (!report.timeline.buckets.empty()) {
    std::printf("\ntimeline (Kreq/s per %lldms bucket):\n",
                static_cast<long long>(ToMillis(report.timeline.bucket_width)));
    for (size_t b = 0; b < report.timeline.buckets.size(); ++b) {
      std::printf(
          "  %6lld ms %8.1f\n",
          static_cast<long long>(b * ToMillis(report.timeline.bucket_width)),
          report.timeline.KreqsAt(b));
    }
  }

  if (flags.GetBool("replica-stats")) {
    std::printf("\nper-replica state:\n");
    for (const scenario::ReplicaReport& replica : report.replicas) {
      std::printf(
          "  %d%s: executed=%llu committed_batches=%llu view_changes=%llu "
          "msgs=%llu cpu_busy=%.1fms%s\n",
          replica.id, replica.trusted ? " (private)" : " (public) ",
          static_cast<unsigned long long>(replica.requests_executed),
          static_cast<unsigned long long>(replica.batches_committed),
          static_cast<unsigned long long>(replica.view_changes_completed),
          static_cast<unsigned long long>(replica.messages_handled),
          replica.cpu_busy_ms, replica.crashed ? " CRASHED" : "");
    }
  }

  std::printf("agreement: %s\n", report.agreement.ToString().c_str());
  if (report.convergence_checked) {
    std::printf("convergence: %s\n", report.convergence.ToString().c_str());
  }
}

using scenario::ApplyQuickBudgets;

/// --backend=tcp: launch real node processes instead of simulating. The
/// launcher (rt/launcher.h) spawns one seemore_node per replica, hosts the
/// spec's clients over real TCP, injects schedule faults as process
/// kills/respawns, and merges the per-node reports.
int RunTcp(const FlagSet& flags, const ScenarioSpec& spec) {
  rt::LauncherOptions options;
  options.node_binary = flags.GetString("node-binary");
  options.work_dir = flags.GetString("work-dir");
  options.base_port = static_cast<uint16_t>(flags.GetInt("base-port"));
  options.keep_work_dir = flags.GetBool("keep-work-dir");
  options.verbose = flags.GetBool("rt-verbose");

  std::printf("backend: tcp (real processes on 127.0.0.1:%u+)\n",
              options.base_port);
  Result<rt::TcpRunReport> run = rt::RunTcpScenario(spec, options);
  if (!run.ok()) {
    std::fprintf(stderr, "%s\n", run.status().ToString().c_str());
    return 2;
  }
  const rt::TcpRunReport& report = *run;

  for (const scenario::AppliedEvent& event : report.events) {
    std::printf("t=%lldms %s\n", static_cast<long long>(ToMillis(event.at)),
                event.description.c_str());
  }
  std::printf("\n%s\n", report.result.ToString().c_str());
  if (flags.GetBool("replica-stats")) {
    std::printf("\nper-node state:\n");
    for (const Json& node : report.nodes) {
      const Json* crashed = node.Find("crashed");
      if (crashed != nullptr && crashed->AsBool()) {
        std::printf("  %d: CRASHED (no report)\n",
                    static_cast<int>(node.Find("id")->AsInt()));
        continue;
      }
      const Json* stats = node.Find("stats");
      std::printf("  %d: executed=%lld last_executed=%lld msgs=%lld%s\n",
                  static_cast<int>(node.Find("id")->AsInt()),
                  static_cast<long long>(
                      stats->Find("requests_executed")->AsInt()),
                  static_cast<long long>(node.Find("last_executed")->AsInt()),
                  static_cast<long long>(
                      stats->Find("messages_handled")->AsInt()),
                  node.Find("recovery")->Find("recovered")->AsBool()
                      ? " (recovered from disk)"
                      : "");
    }
  }
  std::printf("agreement: %s\n", report.agreement.ToString().c_str());
  if (report.convergence_checked) {
    std::printf("convergence: %s\n", report.convergence.ToString().c_str());
  }

  if (flags.WasSet("report-json")) {
    const std::string path = flags.GetString("report-json");
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return 2;
    }
    out << report.ToJson().Dump(2) << "\n";
    std::printf("wrote %s\n", path.c_str());
  }
  return report.ok() ? 0 : 1;
}

/// --smoke: every registered scenario at quick budgets in ONE RunMany pass
/// across `jobs` workers (what the CI scenario-smoke step runs). Writes
/// REPORT_<name>.json per scenario under --report-dir when set. Returns
/// nonzero if any scenario failed to run or violated an invariant.
int SmokeRegistry(const FlagSet& flags, int jobs) {
  std::vector<std::string> names;
  std::vector<ScenarioSpec> specs;
  for (const scenario::RegistryEntry& entry : scenario::Registry()) {
    Result<ScenarioSpec> spec = scenario::FindScenario(entry.name);
    if (!spec.ok()) {
      std::fprintf(stderr, "%s\n", spec.status().ToString().c_str());
      return 2;
    }
    ApplyQuickBudgets(*spec);
    names.push_back(entry.name);
    specs.push_back(*std::move(spec));
  }

  std::printf("smoking %zu scenarios with %d jobs\n", specs.size(), jobs);
  Result<std::vector<ScenarioReport>> reports =
      scenario::RunMany(specs, jobs);
  if (!reports.ok()) {
    std::fprintf(stderr, "%s\n", reports.status().ToString().c_str());
    return 2;
  }

  const std::string report_dir = flags.GetString("report-dir");
  if (!report_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(report_dir, ec);
    if (ec) {
      std::fprintf(stderr, "cannot create %s: %s\n", report_dir.c_str(),
                   ec.message().c_str());
      return 2;
    }
  }
  int status = 0;
  for (size_t i = 0; i < reports->size(); ++i) {
    const ScenarioReport& report = (*reports)[i];
    std::printf("%-24s %s  completed=%llu wall=%.0fms\n", names[i].c_str(),
                report.ok() ? "ok  " : "FAIL",
                static_cast<unsigned long long>(report.result.completed),
                report.result.wall_time_ms);
    if (!report.ok()) {
      std::fprintf(stderr, "  agreement: %s\n",
                   report.agreement.ToString().c_str());
      if (report.convergence_checked) {
        std::fprintf(stderr, "  convergence: %s\n",
                     report.convergence.ToString().c_str());
      }
      status = 1;
    }
    if (!report_dir.empty()) {
      const std::string path = report_dir + "/REPORT_" + names[i] + ".json";
      std::ofstream out(path);
      if (!out) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        status = 2;
        continue;
      }
      out << report.ToJson().Dump(2) << "\n";
    }
  }
  return status;
}

int Run(const FlagSet& flags) {
  const int jobs_flag = static_cast<int>(flags.GetInt("jobs"));
  const int jobs = jobs_flag > 0 ? jobs_flag : ThreadPool::DefaultJobs();

  if (flags.GetBool("smoke")) return SmokeRegistry(flags, jobs);

  if (flags.GetBool("list-scenarios")) {
    for (const scenario::RegistryEntry& entry : scenario::Registry()) {
      if (flags.GetBool("verbose-list")) {
        std::printf("%-24s %s\n", entry.name.c_str(),
                    entry.description.c_str());
      } else {
        std::printf("%s\n", entry.name.c_str());
      }
    }
    return 0;
  }

  Result<ScenarioSpec> loaded =
      flags.WasSet("scenario") ? LoadScenario(flags.GetString("scenario"))
                               : SpecFromFlags(flags);
  if (!loaded.ok()) {
    std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
    return 2;
  }
  ScenarioSpec spec = std::move(loaded).value();

  if (flags.GetBool("quick")) ApplyQuickBudgets(spec);

  // --backend overrides the spec's backend field; either can pick tcp.
  if (flags.WasSet("backend")) {
    Result<scenario::BackendKind> backend =
        scenario::BackendKindFromToken(flags.GetString("backend"));
    if (!backend.ok()) {
      std::fprintf(stderr, "%s\n", backend.status().ToString().c_str());
      return 2;
    }
    spec.backend = *backend;
  }

  Status valid = spec.Validate();
  if (!valid.ok()) {
    std::fprintf(stderr, "invalid scenario: %s\n", valid.ToString().c_str());
    return 2;
  }

  if (flags.GetBool("dump-spec")) {
    std::printf("%s", spec.ToJsonText().c_str());
    return 0;
  }

  std::printf("scenario: %s  cluster: %s  seed=%llu\n", spec.name.c_str(),
              spec.ResolvedConfig().ToString().c_str(),
              static_cast<unsigned long long>(spec.seed));

  if (spec.backend == scenario::BackendKind::kTcp) {
    return RunTcp(flags, spec);
  }

  // A spec with a sweep plan runs one fresh cluster per client population;
  // otherwise a single full-lifecycle run.
  std::vector<ScenarioReport> reports;
  if (!spec.plan.sweep_clients.empty()) {
    Result<std::vector<ScenarioReport>> sweep =
        scenario::RunSweep(spec, jobs);
    if (!sweep.ok()) {
      std::fprintf(stderr, "%s\n", sweep.status().ToString().c_str());
      return 2;
    }
    reports = *std::move(sweep);
  } else {
    Result<ScenarioReport> run = scenario::RunScenario(spec);
    if (!run.ok()) {
      std::fprintf(stderr, "%s\n", run.status().ToString().c_str());
      return 2;
    }
    reports.push_back(*std::move(run));
  }
  for (const ScenarioReport& report : reports) {
    PrintReport(flags, report);
  }

  if (flags.WasSet("report-json")) {
    const std::string path = flags.GetString("report-json");
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return 2;
    }
    if (reports.size() == 1) {
      out << reports[0].ToJson().Dump(2) << "\n";
    } else {
      Json all = Json::Array();
      for (const ScenarioReport& report : reports) {
        all.Append(report.ToJson());
      }
      out << all.Dump(2) << "\n";
    }
    std::printf("wrote %s\n", path.c_str());
  }
  for (const ScenarioReport& report : reports) {
    if (!report.ok()) return 1;
  }
  return 0;
}

}  // namespace
}  // namespace seemore

int main(int argc, char** argv) {
  using namespace seemore;
  FlagSet flags(
      "seemore_ctl: drive a simulated hybrid-cloud replication cluster "
      "through workloads, faults and mode switches");
  flags.AddString("scenario", "",
                  "run a registered scenario by name, or a ScenarioSpec "
                  "JSON file by path (overrides the topology flags)");
  flags.AddBool("list-scenarios", false, "print registered scenario names");
  flags.AddBool("verbose-list", false,
                "with --list-scenarios: include descriptions");
  flags.AddBool("dump-spec", false,
                "print the scenario as JSON instead of running it");
  flags.AddBool("quick", false, "shrink warmup/measure/drain for smoke runs");
  flags.AddBool("smoke", false,
                "run EVERY registered scenario at quick budgets in one "
                "parallel pass (see --jobs); nonzero exit on any violation");
  flags.AddInt("jobs", 0,
               "worker threads for sweeps and --smoke (0 = hardware "
               "concurrency); parallel reports are bit-identical to --jobs=1");
  flags.AddString("report-dir", "",
                  "with --smoke: write REPORT_<scenario>.json files here");
  flags.AddString("report-json", "",
                  "write the structured ScenarioReport to this file");
  flags.AddString("backend", "sim",
                  "sim = run in the simulator; tcp = launch real seemore_node "
                  "processes on localhost and drive them with the same spec");
  flags.AddInt("base-port", 18500,
               "tcp backend: replica r listens on base-port + r");
  flags.AddString("node-binary", "",
                  "tcp backend: path to seemore_node (default: sibling of "
                  "this binary)");
  flags.AddString("work-dir", "",
                  "tcp backend: scratch dir for spec/report/data files "
                  "(default: a fresh /tmp dir, removed afterwards)");
  flags.AddBool("keep-work-dir", false,
                "tcp backend: keep the scratch dir for inspection");
  flags.AddBool("rt-verbose", false,
                "tcp backend: log spawn/kill/respawn activity to stderr");
  flags.AddString("protocol", "seemore", "seemore | cft | bft | supright");
  flags.AddString("mode", "lion", "initial SeeMoRe mode: lion | dog | peacock");
  flags.AddInt("c", 1, "crash budget (private cloud)");
  flags.AddInt("m", 1, "Byzantine budget (public cloud)");
  flags.AddInt("f", 2, "flat failure budget for cft/bft");
  flags.AddInt("s", 0, "private cloud size (default 2c)");
  flags.AddInt("p", 0, "public cloud size (default 3m+1)");
  flags.AddInt("clients", 16, "closed-loop client count");
  flags.AddInt("warmup-ms", 150, "warmup before measurement");
  flags.AddInt("duration-ms", 500, "measured duration");
  flags.AddInt("drain-ms", 0, "post-run drain before invariant checks");
  flags.AddString("workload", "echo", "echo | kv");
  flags.AddInt("req-kb", 0, "echo request payload (KiB)");
  flags.AddInt("rep-kb", 0, "echo reply payload (KiB)");
  flags.AddInt("keys", 128, "kv workload keyspace");
  flags.AddInt("batch", 256, "max requests per consensus instance");
  flags.AddInt("pipeline", 2, "max in-flight consensus instances");
  flags.AddInt("checkpoint-period", 512, "checkpoint every N sequences");
  flags.AddInt("vc-timeout-ms", 30, "primary-suspicion timer");
  flags.AddDouble("drop", 0.0, "message drop probability");
  flags.AddDouble("duplicate", 0.0, "message duplication probability");
  flags.AddInt("cross-cloud-us", 90, "private<->public one-way latency (us)");
  flags.AddInt("seed", 42, "simulation seed (deterministic replay)");
  flags.AddRepeatedString("crash", "", "schedule: <id>@<ms>[,<id>@<ms>...]");
  flags.AddRepeatedString("recover", "", "schedule: <id>@<ms>[,...]");
  flags.AddRepeatedString("byzantine", "",
                  "schedule: <id>:<silent|equivocate|wrongvotes|lie>[+...]"
                  "@<ms>[,...]");
  flags.AddRepeatedString("switch", "", "schedule: <mode>@<ms>[,...] (seemore only)");
  flags.AddRepeatedString("crash-primary", "",
                  "schedule: <ms>[,...] crash whoever is primary then");
  flags.AddRepeatedString("partition", "",
                  "schedule: <ms>[,...] cut all private<->public links");
  flags.AddRepeatedString("heal", "", "schedule: <ms>[,...] restore partitioned links");
  flags.AddRepeatedString("cut-link", "",
                  "schedule: <from>-<to>@<ms>[,...] drop all frames "
                  "from -> to (ONE direction; the reverse keeps flowing)");
  flags.AddRepeatedString("restore-link", "",
                  "schedule: <from>-<to>@<ms>[,...] undo a --cut-link");
  flags.AddRepeatedString("shape-link", "",
                  "schedule: <from>-<to>:<delay_us>:<jitter_us>:<ppm>@<ms>"
                  "[,...] impose extra delay/jitter/loss on from -> to");
  flags.AddBool("durable", false,
                "give every replica a durable WAL + snapshot store (in the "
                "simulated storage medium; see --restart)");
  flags.AddInt("durable-fsync", 1,
               "appends per fsync, 1 = sync every record (setting this "
               "implies --durable)");
  flags.AddInt("durable-segment-kb", 64,
               "WAL segment size in KiB (setting this implies --durable)");
  flags.AddRepeatedString("restart", "",
                  "schedule: <id>@<ms>[,...] replace a crashed replica with "
                  "a fresh process restored from its durable store "
                  "(requires --durable)");
  flags.AddRepeatedString("power-loss", "",
                  "schedule: <id>@<ms>[,...] crash AND roll the disk back "
                  "to its durable frontier (requires --durable)");
  flags.AddRepeatedString("truncate-log", "",
                  "schedule: <id>:<bytes>@<ms>[,...] chop bytes off a "
                  "downed replica's WAL tail (torn-write injection)");
  flags.AddRepeatedString("corrupt-log", "",
                  "schedule: <id>:<offset>@<ms>[,...] flip one bit offset "
                  "bytes before a downed replica's WAL end");
  flags.AddBool("check-convergence", false,
                "after the drain, require live honest replicas to share one "
                "state digest");
  flags.AddBool("timeline", false, "print per-bucket throughput timeline");
  flags.AddInt("timeline-bucket-ms", 10, "timeline bucket width");
  flags.AddBool("replica-stats", true, "print per-replica counters");

  Status status = flags.Parse(argc, argv);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n\n%s", status.ToString().c_str(),
                 flags.Usage().c_str());
    return 2;
  }
  if (flags.help_requested()) {
    std::printf("%s", flags.Usage().c_str());
    return 0;
  }
  return Run(flags);
}
