// seemore_ctl: scriptable scenario driver for the simulated hybrid cloud,
// in the spirit of RocksDB's db_bench. One invocation builds a cluster of
// the chosen protocol, drives a workload, injects a fault/mode-switch
// schedule, and reports throughput, latency, per-replica state and the
// agreement invariant.
//
// Examples:
//   seemore_ctl --protocol=seemore --mode=lion --c=1 --m=1 --clients=32
//   seemore_ctl --protocol=seemore --mode=lion --crash=0@100 --recover=0@400
//   seemore_ctl --protocol=seemore --switch=dog@150 --switch=peacock@400
//   seemore_ctl --protocol=bft --f=2 --byzantine=5:wrongvotes@0 --drop=0.02
//   seemore_ctl --protocol=cft --f=1 --workload=kv --timeline

#include <cstdio>
#include <string>
#include <vector>

#include "harness/cluster.h"
#include "harness/runner.h"
#include "util/flags.h"

namespace seemore {
namespace {

struct ScheduledEvent {
  SimTime at = 0;
  enum Kind { kCrash, kRecover, kByzantine, kSwitch } kind = kCrash;
  int replica = 0;
  uint32_t byz_flags = 0;
  SeeMoReMode target_mode = SeeMoReMode::kLion;
};

Result<uint32_t> ParseByzFlags(const std::string& spec) {
  uint32_t flags = 0;
  for (const std::string& part : SplitString(spec, '+')) {
    if (part == "silent") {
      flags |= kByzSilent;
    } else if (part == "equivocate") {
      flags |= kByzEquivocate;
    } else if (part == "wrongvotes") {
      flags |= kByzWrongVotes;
    } else if (part == "lie") {
      flags |= kByzLieToClients;
    } else {
      return Status::InvalidArgument("unknown byzantine behaviour: " + part);
    }
  }
  return flags;
}

Result<SeeMoReMode> ParseMode(const std::string& name) {
  if (name == "lion") return SeeMoReMode::kLion;
  if (name == "dog") return SeeMoReMode::kDog;
  if (name == "peacock") return SeeMoReMode::kPeacock;
  return Status::InvalidArgument("unknown mode: " + name);
}

/// "<id>@<ms>" -> (id, time).
Result<std::pair<int, SimTime>> ParseAt(const std::string& spec) {
  const std::vector<std::string> parts = SplitString(spec, '@');
  if (parts.size() != 2) {
    return Status::InvalidArgument("expected <what>@<ms>, got: " + spec);
  }
  return std::make_pair(std::atoi(parts[0].c_str()),
                        Millis(std::atoll(parts[1].c_str())));
}

int Run(const FlagSet& flags) {
  ClusterOptions options;
  const std::string protocol = flags.GetString("protocol");
  if (protocol == "seemore") {
    options.config.kind = ProtocolKind::kSeeMoRe;
  } else if (protocol == "cft") {
    options.config.kind = ProtocolKind::kCft;
  } else if (protocol == "bft") {
    options.config.kind = ProtocolKind::kBft;
  } else if (protocol == "supright") {
    options.config.kind = ProtocolKind::kSUpRight;
  } else {
    std::fprintf(stderr, "unknown --protocol=%s\n", protocol.c_str());
    return 2;
  }

  options.config.c = static_cast<int>(flags.GetInt("c"));
  options.config.m = static_cast<int>(flags.GetInt("m"));
  options.config.f = static_cast<int>(flags.GetInt("f"));
  options.config.s = flags.WasSet("s") ? static_cast<int>(flags.GetInt("s"))
                                       : 2 * options.config.c;
  options.config.p = flags.WasSet("p")
                         ? static_cast<int>(flags.GetInt("p"))
                         : 3 * options.config.m + 1;
  if (options.config.kind == ProtocolKind::kSUpRight && !flags.WasSet("p")) {
    options.config.p =
        HybridNetworkSize(options.config.m, options.config.c) -
        options.config.s;
  }
  Result<SeeMoReMode> mode = ParseMode(flags.GetString("mode"));
  if (!mode.ok()) {
    std::fprintf(stderr, "%s\n", mode.status().ToString().c_str());
    return 2;
  }
  options.config.initial_mode = *mode;
  options.config.batch_max = static_cast<int>(flags.GetInt("batch"));
  options.config.pipeline_max = static_cast<int>(flags.GetInt("pipeline"));
  options.config.checkpoint_period =
      static_cast<int>(flags.GetInt("checkpoint-period"));
  options.config.view_change_timeout = Millis(flags.GetInt("vc-timeout-ms"));
  options.net.drop_probability = flags.GetDouble("drop");
  options.net.duplicate_probability = flags.GetDouble("duplicate");
  options.net.cross_cloud.base = Micros(flags.GetInt("cross-cloud-us"));
  options.seed = static_cast<uint64_t>(flags.GetInt("seed"));

  Status valid = options.config.Validate();
  if (!valid.ok()) {
    std::fprintf(stderr, "invalid topology: %s\n", valid.ToString().c_str());
    return 2;
  }

  // Fault / switch schedule.
  std::vector<ScheduledEvent> schedule;
  for (const std::string& spec : SplitString(flags.GetString("crash"), ',')) {
    auto at = ParseAt(spec);
    if (!at.ok()) {
      std::fprintf(stderr, "%s\n", at.status().ToString().c_str());
      return 2;
    }
    schedule.push_back({at->second, ScheduledEvent::kCrash, at->first, 0,
                        SeeMoReMode::kLion});
  }
  for (const std::string& spec :
       SplitString(flags.GetString("recover"), ',')) {
    auto at = ParseAt(spec);
    if (!at.ok()) {
      std::fprintf(stderr, "%s\n", at.status().ToString().c_str());
      return 2;
    }
    schedule.push_back({at->second, ScheduledEvent::kRecover, at->first, 0,
                        SeeMoReMode::kLion});
  }
  for (const std::string& spec :
       SplitString(flags.GetString("byzantine"), ',')) {
    // <id>:<behaviour[+behaviour]>@<ms>
    const std::vector<std::string> head = SplitString(spec, ':');
    if (head.size() != 2) {
      std::fprintf(stderr, "expected --byzantine=<id>:<kind>@<ms>\n");
      return 2;
    }
    auto at = ParseAt(head[0] + "@" + SplitString(head[1], '@').back());
    auto behaviours = ParseByzFlags(SplitString(head[1], '@').front());
    if (!at.ok() || !behaviours.ok()) {
      std::fprintf(stderr, "bad --byzantine spec: %s\n", spec.c_str());
      return 2;
    }
    schedule.push_back({at->second, ScheduledEvent::kByzantine, at->first,
                        *behaviours, SeeMoReMode::kLion});
  }
  for (const std::string& spec : SplitString(flags.GetString("switch"), ',')) {
    // <mode>@<ms>
    const std::vector<std::string> parts = SplitString(spec, '@');
    if (parts.size() != 2) {
      std::fprintf(stderr, "expected --switch=<mode>@<ms>\n");
      return 2;
    }
    auto target = ParseMode(parts[0]);
    if (!target.ok()) {
      std::fprintf(stderr, "%s\n", target.status().ToString().c_str());
      return 2;
    }
    schedule.push_back({Millis(std::atoll(parts[1].c_str())),
                        ScheduledEvent::kSwitch, 0, 0, *target});
  }

  Cluster cluster(options);
  std::printf("cluster: %s  seed=%llu\n", cluster.config().ToString().c_str(),
              static_cast<unsigned long long>(options.seed));

  // Workload.
  const int num_clients = static_cast<int>(flags.GetInt("clients"));
  OpFactory ops;
  if (flags.GetString("workload") == "kv") {
    ops = KvWorkload(options.seed * 13 + 7,
                     static_cast<int>(flags.GetInt("keys")), 0.5);
  } else {
    ops = EchoWorkload(static_cast<uint32_t>(flags.GetInt("req-kb")),
                       static_cast<uint32_t>(flags.GetInt("rep-kb")));
  }

  ThroughputTimeline timeline;
  timeline.bucket_width = Millis(flags.GetInt("timeline-bucket-ms"));
  for (int i = 0; i < num_clients; ++i) {
    SimClient* client = cluster.AddClient();
    if (flags.GetBool("timeline")) {
      client->on_complete = [&timeline](SimTime when, SimTime) {
        timeline.Record(when);
      };
    }
    client->Start(ops);
  }

  // Execute the schedule interleaved with the run.
  const SimTime warmup = Millis(flags.GetInt("warmup-ms"));
  const SimTime duration = Millis(flags.GetInt("duration-ms"));
  for (const ScheduledEvent& event : schedule) {
    cluster.sim().RunUntil(event.at);
    switch (event.kind) {
      case ScheduledEvent::kCrash:
        std::printf("t=%.0fms crash replica %d\n", ToMillis(event.at),
                    event.replica);
        cluster.Crash(event.replica);
        break;
      case ScheduledEvent::kRecover:
        std::printf("t=%.0fms recover replica %d\n", ToMillis(event.at),
                    event.replica);
        cluster.Recover(event.replica);
        break;
      case ScheduledEvent::kByzantine:
        std::printf("t=%.0fms replica %d turns Byzantine (flags=0x%x)\n",
                    ToMillis(event.at), event.replica, event.byz_flags);
        cluster.SetByzantine(event.replica, event.byz_flags);
        break;
      case ScheduledEvent::kSwitch: {
        SeeMoReReplica* any = nullptr;
        for (int i = 0; i < cluster.n(); ++i) {
          if (!cluster.replica(i)->crashed()) {
            any = cluster.seemore(i);
            break;
          }
        }
        if (any == nullptr) break;
        // The switch must be requested on the new view's trusted authority;
        // if that node is crashed, aim one view further (the view change
        // would skip the dead primary anyway).
        Status status = Status::Unavailable("no live authority");
        for (uint64_t ahead = 1; ahead <= static_cast<uint64_t>(
                                              cluster.config().s);
             ++ahead) {
          const PrincipalId authority =
              any->SwitchAuthority(event.target_mode, any->view() + ahead);
          if (cluster.replica(authority)->crashed()) continue;
          status =
              cluster.seemore(authority)->RequestModeSwitch(event.target_mode);
          std::printf("t=%.0fms switch to %s via replica %d: %s\n",
                      ToMillis(event.at), SeeMoReModeName(event.target_mode),
                      authority, status.ToString().c_str());
          break;
        }
        if (!status.ok() && status.code() == StatusCode::kUnavailable) {
          std::printf("t=%.0fms switch to %s skipped: %s\n",
                      ToMillis(event.at), SeeMoReModeName(event.target_mode),
                      status.ToString().c_str());
        }
        break;
      }
    }
  }
  cluster.sim().RunUntil(warmup);
  for (int i = 0; i < num_clients; ++i) cluster.client(i)->ResetStats();
  cluster.sim().RunUntil(warmup + duration);

  // Report.
  RunResult result;
  result.clients = num_clients;
  Histogram merged;
  for (int i = 0; i < num_clients; ++i) {
    result.completed += cluster.client(i)->completed();
    result.retransmissions += cluster.client(i)->retransmissions();
    merged.Merge(cluster.client(i)->latencies());
    cluster.client(i)->Stop();
  }
  const double seconds = ToMillis(duration) / 1000.0;
  result.throughput_kreqs = result.completed / seconds / 1000.0;
  result.mean_latency_ms = merged.Mean() / 1e6;
  result.p50_latency_ms = merged.Percentile(50) / 1e6;
  result.p99_latency_ms = merged.Percentile(99) / 1e6;
  std::printf("\n%s\n", result.ToString().c_str());

  if (flags.GetBool("timeline")) {
    std::printf("\ntimeline (Kreq/s per %lldms bucket):\n",
                static_cast<long long>(ToMillis(timeline.bucket_width)));
    for (size_t b = 0; b < timeline.buckets.size(); ++b) {
      std::printf("  %6lld ms %8.1f\n",
                  static_cast<long long>(b * ToMillis(timeline.bucket_width)),
                  timeline.KreqsAt(b));
    }
  }

  if (flags.GetBool("replica-stats")) {
    std::printf("\nper-replica state:\n");
    for (int i = 0; i < cluster.n(); ++i) {
      const ReplicaBase* replica = cluster.replica(i);
      std::printf(
          "  %d%s: executed=%llu committed_batches=%llu view_changes=%llu "
          "msgs=%llu cpu_busy=%.1fms%s\n",
          i, cluster.config().IsTrusted(i) ? " (private)" : " (public) ",
          static_cast<unsigned long long>(replica->stats().requests_executed),
          static_cast<unsigned long long>(replica->stats().batches_committed),
          static_cast<unsigned long long>(
              replica->stats().view_changes_completed),
          static_cast<unsigned long long>(replica->stats().messages_handled),
          ToMillis(cluster.replica(i)->cpu()->total_busy()),
          replica->crashed() ? " CRASHED" : "");
    }
  }

  Status agreement = cluster.CheckAgreement();
  std::printf("agreement: %s\n", agreement.ToString().c_str());
  return agreement.ok() ? 0 : 1;
}

}  // namespace
}  // namespace seemore

int main(int argc, char** argv) {
  using namespace seemore;
  FlagSet flags(
      "seemore_ctl: drive a simulated hybrid-cloud replication cluster "
      "through workloads, faults and mode switches");
  flags.AddString("protocol", "seemore", "seemore | cft | bft | supright");
  flags.AddString("mode", "lion", "initial SeeMoRe mode: lion | dog | peacock");
  flags.AddInt("c", 1, "crash budget (private cloud)");
  flags.AddInt("m", 1, "Byzantine budget (public cloud)");
  flags.AddInt("f", 2, "flat failure budget for cft/bft");
  flags.AddInt("s", 0, "private cloud size (default 2c)");
  flags.AddInt("p", 0, "public cloud size (default 3m+1)");
  flags.AddInt("clients", 16, "closed-loop client count");
  flags.AddInt("warmup-ms", 150, "warmup before measurement");
  flags.AddInt("duration-ms", 500, "measured duration");
  flags.AddString("workload", "echo", "echo | kv");
  flags.AddInt("req-kb", 0, "echo request payload (KiB)");
  flags.AddInt("rep-kb", 0, "echo reply payload (KiB)");
  flags.AddInt("keys", 128, "kv workload keyspace");
  flags.AddInt("batch", 256, "max requests per consensus instance");
  flags.AddInt("pipeline", 2, "max in-flight consensus instances");
  flags.AddInt("checkpoint-period", 512, "checkpoint every N sequences");
  flags.AddInt("vc-timeout-ms", 30, "primary-suspicion timer");
  flags.AddDouble("drop", 0.0, "message drop probability");
  flags.AddDouble("duplicate", 0.0, "message duplication probability");
  flags.AddInt("cross-cloud-us", 90, "private<->public one-way latency (us)");
  flags.AddInt("seed", 42, "simulation seed (deterministic replay)");
  flags.AddString("crash", "", "schedule: <id>@<ms>[,<id>@<ms>...]");
  flags.AddString("recover", "", "schedule: <id>@<ms>[,...]");
  flags.AddString("byzantine", "",
                  "schedule: <id>:<silent|equivocate|wrongvotes|lie>[+...]"
                  "@<ms>[,...]");
  flags.AddString("switch", "", "schedule: <mode>@<ms>[,...] (seemore only)");
  flags.AddBool("timeline", false, "print per-bucket throughput timeline");
  flags.AddInt("timeline-bucket-ms", 10, "timeline bucket width");
  flags.AddBool("replica-stats", true, "print per-replica counters");

  Status status = flags.Parse(argc, argv);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n\n%s", status.ToString().c_str(),
                 flags.Usage().c_str());
    return 2;
  }
  if (flags.help_requested()) {
    std::printf("%s", flags.Usage().c_str());
    return 0;
  }
  return Run(flags);
}
