// seemore_node: one replica of a real SeeMoRe/PBFT/Paxos/S-UpRight cluster
// as an OS process.
//
// The launcher (seemore_ctl --backend=tcp, or rt::RunTcpScenario directly)
// spawns one of these per replica id with a shared ScenarioSpec file; the
// process serves over real TCP on 127.0.0.1:base_port+id until SIGTERM,
// then writes its per-node report JSON. Run by hand for a poke-at-it
// cluster:
//
//   seemore_node --spec=spec.json --id=0 &
//   seemore_node --spec=spec.json --id=1 &
//   ...

#include <cstdio>

#include "rt/node.h"
#include "util/flags.h"

namespace {

int Main(int argc, char** argv) {
  using seemore::scenario::ScenarioSpec;

  seemore::FlagSet flags(
      "seemore_node: host one replica of a real localhost cluster");
  flags.AddString("spec", "", "path to the ScenarioSpec JSON (required)");
  flags.AddInt("id", 0, "replica id within the spec's topology");
  flags.AddInt("base-port", 18500, "replica r listens on base-port + r");
  flags.AddString("report", "",
                  "where the end-of-run report JSON goes (default stdout)");
  flags.AddString("data-dir", "",
                  "durable data directory (enables WAL/snapshot persistence "
                  "when the spec's durability is on; a non-empty directory "
                  "triggers restart recovery)");
  flags.AddInt("max-run-ms", 0, "hard runtime cap, 0 = none");

  const seemore::Status parsed = flags.Parse(argc, argv);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n%s", parsed.ToString().c_str(),
                 flags.Usage().c_str());
    return 2;
  }
  if (flags.help_requested()) {
    std::fprintf(stdout, "%s", flags.Usage().c_str());
    return 0;
  }
  if (flags.GetString("spec").empty()) {
    std::fprintf(stderr, "--spec is required\n%s", flags.Usage().c_str());
    return 2;
  }

  std::FILE* in = std::fopen(flags.GetString("spec").c_str(), "r");
  if (in == nullptr) {
    std::fprintf(stderr, "cannot read spec: %s\n",
                 flags.GetString("spec").c_str());
    return 2;
  }
  std::string text;
  char buf[64 * 1024];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), in)) > 0) text.append(buf, n);
  std::fclose(in);

  seemore::Result<ScenarioSpec> spec = ScenarioSpec::FromJsonText(text);
  if (!spec.ok()) {
    std::fprintf(stderr, "bad spec: %s\n", spec.status().ToString().c_str());
    return 2;
  }

  seemore::rt::NodeOptions options;
  options.replica_id = static_cast<int>(flags.GetInt("id"));
  options.base_port = static_cast<uint16_t>(flags.GetInt("base-port"));
  options.data_dir = flags.GetString("data-dir");
  options.report_path = flags.GetString("report");
  options.max_run = seemore::Millis(flags.GetInt("max-run-ms"));

  seemore::rt::Node node(std::move(*spec), options);
  seemore::Status status = node.Init();
  if (!status.ok()) {
    std::fprintf(stderr, "node %d init failed: %s\n", options.replica_id,
                 status.ToString().c_str());
    return 1;
  }
  status = node.Serve();
  if (!status.ok()) {
    std::fprintf(stderr, "node %d failed: %s\n", options.replica_id,
                 status.ToString().c_str());
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Main(argc, argv); }
