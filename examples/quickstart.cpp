// Quickstart: describe a SeeMoRe deployment as a declarative ScenarioSpec,
// build the simulated hybrid-cloud cluster from it, write and read a few
// keys, inspect roles and stats.
//
// Topology: the paper's base case (c = m = 1) — a private cloud of 2
// trusted nodes (at most 1 may crash) renting 4 public nodes (at most 1 may
// be Byzantine), N = 3m+2c+1 = 6, running in Lion mode.

#include <cstdio>

#include "scenario/builder.h"
#include "scenario/engine.h"

using namespace seemore;

int main() {
  // 1. Describe the deployment. The same spec could be written as JSON and
  //    run with `seemore_ctl --scenario=...` (see examples/README.md).
  scenario::ScenarioBuilder builder;
  builder.Name("quickstart")
      .SeeMoRe(SeeMoReMode::kLion, /*c=*/1, /*m=*/1)
      .CloudSizes(/*s=*/2, /*p=*/4)
      .Seed(2024);

  // 2. Build the cluster from the spec: simulator + network + 6 replicas,
  //    each running a replicated key-value store.
  Result<std::unique_ptr<Cluster>> made =
      scenario::MakeCluster(builder.spec());
  if (!made.ok()) {
    std::fprintf(stderr, "%s\n", made.status().ToString().c_str());
    return 2;
  }
  Cluster& cluster = **made;
  std::printf("cluster: %s\n", cluster.config().ToString().c_str());
  for (int i = 0; i < cluster.n(); ++i) {
    std::printf("  replica %d: %s cloud%s\n", i,
                cluster.config().IsTrusted(i) ? "private" : "public ",
                cluster.seemore(i)->IsPrimary() ? "  <- primary" : "");
  }

  // 3. Attach a client and issue requests. SubmitOne hands the result to a
  //    callback once the mode's reply quorum is reached (for Lion: the
  //    trusted primary's signed reply).
  SimClient* client = cluster.AddClient();

  auto put_done = [](const Bytes& result) {
    std::printf("PUT  -> %s\n",
                ParseKvReply(result).status == KvResult::kOk ? "OK" : "error");
  };
  client->SubmitOne(MakePut("paper", "SeeMoRe (ICDE 2020)"), put_done);
  client->SubmitOne(MakePut("modes", "Lion, Dog, Peacock"), put_done);
  client->SubmitOne(MakeGet("paper"), [](const Bytes& result) {
    KvReply reply = ParseKvReply(result);
    std::printf("GET paper -> \"%s\"\n", reply.value.c_str());
  });

  // 4. Drive the simulation until everything settles.
  cluster.sim().Run();

  // 5. Inspect what happened.
  std::printf("\nafter %0.2f simulated ms:\n", ToMillis(cluster.sim().now()));
  std::printf("  client completed %llu requests, mean latency %.2f ms\n",
              static_cast<unsigned long long>(client->completed()),
              client->latencies().Mean() / 1e6);
  for (int i = 0; i < cluster.n(); ++i) {
    std::printf("  replica %d executed %llu requests (last seq %llu)\n", i,
                static_cast<unsigned long long>(
                    cluster.replica(i)->stats().requests_executed),
                static_cast<unsigned long long>(
                    cluster.seemore(i)->last_executed()));
  }
  Status agreement = cluster.CheckAgreement();
  std::printf("  agreement invariant: %s\n", agreement.ToString().c_str());
  return agreement.ok() ? 0 : 1;
}
