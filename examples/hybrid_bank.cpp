// A small banking service on the hybrid cloud: account balances in the
// replicated KV store, transfers via compare-and-swap, concurrent tellers,
// and the full §3 failure model exercised live — a private node crashes and
// a public node turns Byzantine mid-run (both declared in the scenario's
// schedule), yet no money is created or destroyed and every replica
// converges to the same books. The tellers are custom closed-loop logic, so
// the spec runs zero standard clients and the tellers ride in via hooks.

#include <cstdio>
#include <string>
#include <vector>

#include "scenario/builder.h"
#include "scenario/engine.h"

using namespace seemore;

namespace {

constexpr int kAccounts = 8;
constexpr int kInitialBalance = 1000;

std::string AccountKey(int account) {
  return "acct-" + std::to_string(account);
}

/// One teller: repeatedly moves 1 unit between random accounts using
/// optimistic CAS loops (read -> CAS, retry on conflict).
class Teller {
 public:
  Teller(Cluster& cluster, uint64_t seed)
      : cluster_(cluster), client_(cluster.AddClient()), rng_(seed) {}

  void Start() { BeginTransfer(); }
  void Stop() { stopped_ = true; }
  int transfers_done() const { return transfers_done_; }

 private:
  void BeginTransfer() {
    if (stopped_) return;
    from_ = static_cast<int>(rng_.NextBounded(kAccounts));
    to_ = static_cast<int>(rng_.NextBounded(kAccounts));
    if (to_ == from_) to_ = (to_ + 1) % kAccounts;
    ReadSource();
  }

  void ReadSource() {
    if (stopped_) return;
    client_->SubmitOne(MakeGet(AccountKey(from_)), [this](const Bytes& r) {
      KvReply reply = ParseKvReply(r);
      if (reply.status != KvResult::kOk) return BeginTransfer();
      const int balance = std::stoi(reply.value);
      if (balance <= 0) return BeginTransfer();
      DebitSource(balance);
    });
  }

  void DebitSource(int balance) {
    if (stopped_) return;
    client_->SubmitOne(
        MakeCas(AccountKey(from_), std::to_string(balance),
                std::to_string(balance - 1)),
        [this](const Bytes& r) {
          if (ParseKvReply(r).status != KvResult::kOk) {
            return BeginTransfer();  // lost the race; retry
          }
          CreditDestination();
        });
  }

  void CreditDestination() {
    client_->SubmitOne(MakeGet(AccountKey(to_)), [this](const Bytes& r) {
      KvReply reply = ParseKvReply(r);
      if (reply.status != KvResult::kOk) return;  // should not happen
      const int balance = std::stoi(reply.value);
      client_->SubmitOne(MakeCas(AccountKey(to_), std::to_string(balance),
                                 std::to_string(balance + 1)),
                         [this](const Bytes& r2) {
                           if (ParseKvReply(r2).status == KvResult::kOk) {
                             ++transfers_done_;
                             BeginTransfer();
                           } else {
                             // Credit conflicted; retry the credit only —
                             // the debit already happened exactly once.
                             CreditDestination();
                           }
                         });
    });
  }

  Cluster& cluster_;
  SimClient* client_;
  Rng rng_;
  bool stopped_ = false;
  int from_ = 0;
  int to_ = 0;
  int transfers_done_ = 0;
};

}  // namespace

int main() {
  // The deployment, the fault schedule and the invariant checks, declared
  // up front: the paper's base case with a private crash at t=150ms and a
  // public node turning Byzantine at t=250ms — the full (c=1, m=1) budget.
  scenario::ScenarioBuilder builder;
  builder.Name("hybrid-bank")
      .SeeMoRe(SeeMoReMode::kLion, /*c=*/1, /*m=*/1)
      .CloudSizes(/*s=*/2, /*p=*/4)
      .Seed(7)
      .Clients(0)  // the tellers below are the workload
      .CrashAt(Millis(150), 1)
      .ByzantineAt(Millis(250), 5, kByzWrongVotes | kByzLieToClients)
      .Warmup(Millis(50))
      .Measure(Millis(400))
      .Drain(Millis(300))
      .CheckConvergence();

  std::vector<std::unique_ptr<Teller>> tellers;
  SimClient* admin = nullptr;
  int total = -1;
  int transfers = 0;

  scenario::ScenarioHooks hooks;
  hooks.on_start = [&](Cluster& cluster) {
    // Fund the accounts before any teller runs.
    admin = cluster.AddClient();
    for (int account = 0; account < kAccounts; ++account) {
      admin->SubmitOne(
          MakePut(AccountKey(account), std::to_string(kInitialBalance)),
          [](const Bytes&) {});
    }
    cluster.sim().Run();
    std::printf("funded %d accounts with %d each (total %d)\n", kAccounts,
                kInitialBalance, kAccounts * kInitialBalance);
    // Four concurrent tellers.
    for (int i = 0; i < 4; ++i) {
      tellers.push_back(std::make_unique<Teller>(cluster, 100 + i));
      tellers.back()->Start();
    }
  };
  hooks.on_event = [](Cluster& cluster, const scenario::ScenarioEvent& event,
                      const Status&) {
    std::printf("t=%.0fms: %s\n", ToMillis(cluster.sim().now()),
                event.ToString().c_str());
  };
  hooks.on_finish = [&](Cluster& cluster) {
    for (auto& teller : tellers) teller->Stop();
    cluster.sim().RunUntil(cluster.sim().now() + Millis(300));

    // Audit the books.
    total = 0;
    std::printf("\nfinal balances:");
    for (int account = 0; account < kAccounts; ++account) {
      bool done = false;
      int balance = -1;
      admin->SubmitOne(MakeGet(AccountKey(account)),
                       [&done, &balance](const Bytes& r) {
                         balance = std::stoi(ParseKvReply(r).value);
                         done = true;
                       });
      while (!done && cluster.sim().Step()) {
      }
      std::printf(" %d", balance);
      total += balance;
    }
    for (auto& teller : tellers) transfers += teller->transfers_done();
    std::printf("\ntotal = %d (expected %d), transfers completed = %d\n",
                total, kAccounts * kInitialBalance, transfers);
  };

  Result<scenario::ScenarioReport> run =
      scenario::RunScenario(builder.spec(), hooks);
  if (!run.ok()) {
    std::fprintf(stderr, "%s\n", run.status().ToString().c_str());
    return 2;
  }
  const scenario::ScenarioReport& report = *run;

  std::printf("agreement across replicas: %s\n",
              report.agreement.ToString().c_str());
  std::printf("convergence of live honest replicas: %s\n",
              report.convergence.ToString().c_str());
  const bool conserved = total == kAccounts * kInitialBalance;
  std::printf("money conserved: %s\n", conserved ? "yes" : "NO");
  return (report.ok() && conserved && transfers > 0) ? 0 : 1;
}
