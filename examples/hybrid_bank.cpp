// A small banking service on the hybrid cloud: account balances in the
// replicated KV store, transfers via compare-and-swap, concurrent tellers,
// and the full §3 failure model exercised live — a private node crashes and
// a public node turns Byzantine mid-run, yet no money is created or
// destroyed and every replica converges to the same books.

#include <cstdio>
#include <string>
#include <vector>

#include "harness/cluster.h"

using namespace seemore;

namespace {

constexpr int kAccounts = 8;
constexpr int kInitialBalance = 1000;

std::string AccountKey(int account) {
  return "acct-" + std::to_string(account);
}

/// One teller: repeatedly moves 1 unit between random accounts using
/// optimistic CAS loops (read -> CAS, retry on conflict).
class Teller {
 public:
  Teller(Cluster& cluster, uint64_t seed)
      : cluster_(cluster), client_(cluster.AddClient()), rng_(seed) {}

  void Start() { BeginTransfer(); }
  void Stop() { stopped_ = true; }
  int transfers_done() const { return transfers_done_; }

 private:
  void BeginTransfer() {
    if (stopped_) return;
    from_ = static_cast<int>(rng_.NextBounded(kAccounts));
    to_ = static_cast<int>(rng_.NextBounded(kAccounts));
    if (to_ == from_) to_ = (to_ + 1) % kAccounts;
    ReadSource();
  }

  void ReadSource() {
    if (stopped_) return;
    client_->SubmitOne(MakeGet(AccountKey(from_)), [this](const Bytes& r) {
      KvReply reply = ParseKvReply(r);
      if (reply.status != KvResult::kOk) return BeginTransfer();
      const int balance = std::stoi(reply.value);
      if (balance <= 0) return BeginTransfer();
      DebitSource(balance);
    });
  }

  void DebitSource(int balance) {
    if (stopped_) return;
    client_->SubmitOne(
        MakeCas(AccountKey(from_), std::to_string(balance),
                std::to_string(balance - 1)),
        [this](const Bytes& r) {
          if (ParseKvReply(r).status != KvResult::kOk) {
            return BeginTransfer();  // lost the race; retry
          }
          CreditDestination();
        });
  }

  void CreditDestination() {
    client_->SubmitOne(MakeGet(AccountKey(to_)), [this](const Bytes& r) {
      KvReply reply = ParseKvReply(r);
      if (reply.status != KvResult::kOk) return;  // should not happen
      const int balance = std::stoi(reply.value);
      client_->SubmitOne(MakeCas(AccountKey(to_), std::to_string(balance),
                                 std::to_string(balance + 1)),
                         [this](const Bytes& r2) {
                           if (ParseKvReply(r2).status == KvResult::kOk) {
                             ++transfers_done_;
                             BeginTransfer();
                           } else {
                             // Credit conflicted; retry the credit only —
                             // the debit already happened exactly once.
                             CreditDestination();
                           }
                         });
    });
  }

  Cluster& cluster_;
  SimClient* client_;
  Rng rng_;
  bool stopped_ = false;
  int from_ = 0;
  int to_ = 0;
  int transfers_done_ = 0;
};

}  // namespace

int main() {
  ClusterOptions options;
  options.config.kind = ProtocolKind::kSeeMoRe;
  options.config.s = 2;
  options.config.p = 4;
  options.config.c = 1;
  options.config.m = 1;
  options.config.initial_mode = SeeMoReMode::kLion;
  options.seed = 7;
  Cluster cluster(options);

  // Fund the accounts.
  SimClient* admin = cluster.AddClient();
  for (int account = 0; account < kAccounts; ++account) {
    admin->SubmitOne(
        MakePut(AccountKey(account), std::to_string(kInitialBalance)),
        [](const Bytes&) {});
  }
  cluster.sim().Run();
  std::printf("funded %d accounts with %d each (total %d)\n", kAccounts,
              kInitialBalance, kAccounts * kInitialBalance);

  // Four concurrent tellers.
  std::vector<std::unique_ptr<Teller>> tellers;
  for (int i = 0; i < 4; ++i) {
    tellers.push_back(std::make_unique<Teller>(cluster, 100 + i));
    tellers.back()->Start();
  }

  // Let them run, then inject the paper's full failure budget.
  cluster.sim().RunUntil(cluster.sim().now() + Millis(100));
  std::printf("t=%.0fms: crashing private replica 1 (within c=1)\n",
              ToMillis(cluster.sim().now()));
  cluster.Crash(1);
  cluster.sim().RunUntil(cluster.sim().now() + Millis(100));
  std::printf("t=%.0fms: public replica 5 turns Byzantine (within m=1)\n",
              ToMillis(cluster.sim().now()));
  cluster.SetByzantine(5, kByzWrongVotes | kByzLieToClients);
  cluster.sim().RunUntil(cluster.sim().now() + Millis(200));

  for (auto& teller : tellers) teller->Stop();
  cluster.sim().RunUntil(cluster.sim().now() + Millis(300));

  // Audit the books.
  int total = 0;
  std::printf("\nfinal balances:");
  for (int account = 0; account < kAccounts; ++account) {
    bool done = false;
    int balance = -1;
    admin->SubmitOne(MakeGet(AccountKey(account)),
                     [&done, &balance](const Bytes& r) {
                       balance = std::stoi(ParseKvReply(r).value);
                       done = true;
                     });
    while (!done && cluster.sim().Step()) {
    }
    std::printf(" %d", balance);
    total += balance;
  }
  int transfers = 0;
  for (auto& teller : tellers) transfers += teller->transfers_done();
  std::printf("\ntotal = %d (expected %d), transfers completed = %d\n", total,
              kAccounts * kInitialBalance, transfers);

  Status agreement = cluster.CheckAgreement();
  std::printf("agreement across replicas: %s\n", agreement.ToString().c_str());
  const bool conserved = total == kAccounts * kInitialBalance;
  std::printf("money conserved: %s\n", conserved ? "yes" : "NO");
  return (agreement.ok() && conserved && transfers > 0) ? 0 : 1;
}
