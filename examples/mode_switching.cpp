// Dynamic mode switching (§5.4) end to end: plan a hybrid deployment with
// the §4 sizing calculator, run Lion under load, then switch the live
// cluster to Dog (shedding private-cloud load) and on to Peacock (public
// cloud handles everything), printing per-phase throughput and the load
// observed on private-cloud CPUs — the quantity the Dog/Peacock modes exist
// to reduce.

#include <cstdio>

#include "harness/cluster.h"
#include "harness/runner.h"

using namespace seemore;

namespace {

double BusyMs(Cluster& cluster, PrincipalId id) {
  return ToMillis(cluster.replica(id)->cpu()->total_busy());
}

void RunPhase(Cluster& cluster, const char* label, SimTime duration) {
  // Track the two private nodes separately: the paper's Dog mode keeps the
  // trusted primary sequencing but makes every OTHER private node passive;
  // Peacock idles the whole private cloud (§5.2, §5.3).
  const double busy0_before = BusyMs(cluster, 0);
  const double busy1_before = BusyMs(cluster, 1);
  uint64_t completed_before = 0;
  for (int i = 0; i < cluster.num_clients(); ++i) {
    completed_before += cluster.client(i)->completed();
  }
  const SimTime start = cluster.sim().now();
  cluster.sim().RunUntil(start + duration);
  uint64_t completed_after = 0;
  for (int i = 0; i < cluster.num_clients(); ++i) {
    completed_after += cluster.client(i)->completed();
  }
  const double seconds = ToMillis(duration) / 1000.0;
  const double kreqs =
      static_cast<double>(completed_after - completed_before) / seconds / 1000;
  const double load0 =
      (BusyMs(cluster, 0) - busy0_before) / ToMillis(duration) * 100.0;
  const double load1 =
      (BusyMs(cluster, 1) - busy1_before) / ToMillis(duration) * 100.0;
  std::printf(
      "%-22s thrpt=%6.1f kreq/s   private CPU: node0=%5.1f%% node1=%5.1f%%\n",
      label, kreqs, load0, load1);
}

}  // namespace

int main() {
  // 1. Plan the deployment with the §4 calculator: S=2 trusted servers, one
  //    may crash; the rental market offers clouds with alpha = 0.25.
  SizingResult plan = PublicCloudSizeByRatio(/*s=*/2, /*c=*/1, /*alpha=*/0.25);
  std::printf("sizing: rent P=%d public nodes (N=%d) [%s]\n",
              plan.public_nodes, plan.network_size, plan.explanation.c_str());
  const int m = static_cast<int>(0.25 * plan.public_nodes);  // m = alpha*P

  ClusterOptions options;
  options.config.kind = ProtocolKind::kSeeMoRe;
  options.config.s = 2;
  options.config.c = 1;
  options.config.p = plan.public_nodes;
  options.config.m = m;
  options.config.initial_mode = SeeMoReMode::kLion;
  options.config.batch_max = 128;
  options.config.pipeline_max = 2;
  options.seed = 99;
  Cluster cluster(options);
  std::printf("cluster: %s\n\n", cluster.config().ToString().c_str());

  // 2. Closed-loop load.
  for (int i = 0; i < 24; ++i) {
    cluster.AddClient()->Start(KvWorkload(500 + i, 128, 0.5));
  }
  RunPhase(cluster, "Lion (warmup)", Millis(150));
  RunPhase(cluster, "Lion", Millis(250));

  // 3. The private cloud gets busy -> hand the agreement to the public
  //    proxies. The switch is requested on the trusted authority of the
  //    next view and rides an ordinary view change (§5.4).
  {
    SeeMoReReplica* any = cluster.seemore(0);
    PrincipalId authority =
        any->SwitchAuthority(SeeMoReMode::kDog, any->view() + 1);
    Status status =
        cluster.seemore(authority)->RequestModeSwitch(SeeMoReMode::kDog);
    std::printf("\nswitch to Dog via trusted replica %d: %s\n", authority,
                status.ToString().c_str());
  }
  RunPhase(cluster, "Dog (settling)", Millis(150));
  RunPhase(cluster, "Dog", Millis(250));

  // 4. Push even the sequencing off the private cloud.
  {
    SeeMoReReplica* any = cluster.seemore(0);
    PrincipalId authority =
        any->SwitchAuthority(SeeMoReMode::kPeacock, any->view() + 1);
    Status status =
        cluster.seemore(authority)->RequestModeSwitch(SeeMoReMode::kPeacock);
    std::printf("\nswitch to Peacock via trusted replica %d: %s\n", authority,
                status.ToString().c_str());
  }
  RunPhase(cluster, "Peacock (settling)", Millis(150));
  RunPhase(cluster, "Peacock", Millis(250));

  for (int i = 0; i < cluster.num_clients(); ++i) cluster.client(i)->Stop();
  cluster.sim().RunUntil(cluster.sim().now() + Millis(500));

  std::printf("\nfinal modes: ");
  for (int i = 0; i < cluster.n(); ++i) {
    std::printf("%s ", SeeMoReModeName(cluster.seemore(i)->mode()));
  }
  Status agreement = cluster.CheckAgreement();
  std::printf("\nagreement across all replicas and modes: %s\n",
              agreement.ToString().c_str());
  return agreement.ok() ? 0 : 1;
}
