// Dynamic mode switching (§5.4) end to end: plan a hybrid deployment with
// the §4 sizing calculator, describe the whole experiment — Lion under
// load, a live switch to Dog (shedding private-cloud load), then on to
// Peacock (public cloud handles everything) — as one declarative
// ScenarioSpec, and let scenario::RunScenario drive it. Scenario hooks
// snapshot per-phase throughput and the load observed on private-cloud
// CPUs — the quantity the Dog/Peacock modes exist to reduce.

#include <cstdio>
#include <vector>

#include "scenario/builder.h"
#include "scenario/engine.h"

using namespace seemore;

namespace {

struct Snapshot {
  SimTime at = 0;
  uint64_t completed = 0;
  double busy0_ms = 0.0;  // private node 0 (the Lion/Dog sequencer)
  double busy1_ms = 0.0;  // private node 1 (passive in Dog, idle in Peacock)
};

Snapshot TakeSnapshot(Cluster& cluster) {
  Snapshot snap;
  snap.at = cluster.sim().now();
  for (int i = 0; i < cluster.num_clients(); ++i) {
    snap.completed += cluster.client(i)->completed();
  }
  snap.busy0_ms = ToMillis(cluster.replica(0)->cpu()->total_busy());
  snap.busy1_ms = ToMillis(cluster.replica(1)->cpu()->total_busy());
  return snap;
}

void PrintPhase(const char* label, const Snapshot& from, const Snapshot& to) {
  // Track the two private nodes separately: the paper's Dog mode keeps the
  // trusted primary sequencing but makes every OTHER private node passive;
  // Peacock idles the whole private cloud (§5.2, §5.3).
  const double window_ms = ToMillis(to.at - from.at);
  const double kreqs = static_cast<double>(to.completed - from.completed) /
                       (window_ms / 1000.0) / 1000.0;
  std::printf(
      "%-22s thrpt=%6.1f kreq/s   private CPU: node0=%5.1f%% node1=%5.1f%%\n",
      label, kreqs, (to.busy0_ms - from.busy0_ms) / window_ms * 100.0,
      (to.busy1_ms - from.busy1_ms) / window_ms * 100.0);
}

}  // namespace

int main() {
  // 1. Plan the deployment with the §4 calculator: S=2 trusted servers, one
  //    may crash; the rental market offers clouds with alpha = 0.25.
  SizingResult plan = PublicCloudSizeByRatio(/*s=*/2, /*c=*/1, /*alpha=*/0.25);
  std::printf("sizing: rent P=%d public nodes (N=%d) [%s]\n",
              plan.public_nodes, plan.network_size, plan.explanation.c_str());
  const int m = static_cast<int>(0.25 * plan.public_nodes);  // m = alpha*P

  // 2. The whole experiment as one spec: closed-loop KV load, a switch to
  //    Dog at t=400ms and to Peacock at t=800ms, then a drain and a
  //    convergence check across all replicas and modes.
  scenario::ScenarioBuilder builder;
  builder.Name("mode-switching")
      .SeeMoRe(SeeMoReMode::kLion, /*c=*/1, m)
      .CloudSizes(/*s=*/2, plan.public_nodes)
      .Batching(128, 2)
      .Seed(99)
      .Clients(24)
      .Kv(128, 0.5)
      .SwitchAt(Millis(400), SeeMoReMode::kDog)
      .SwitchAt(Millis(800), SeeMoReMode::kPeacock)
      .Warmup(Millis(100))
      .Measure(Millis(1100))
      .Drain(Millis(500))
      .CheckConvergence();

  // 3. Hooks: measure each mode's steady phase (the 150ms after a switch is
  //    settling time and excluded), and report each switch as it happens.
  const SimTime phase_marks[] = {Millis(150), Millis(400),  Millis(550),
                                 Millis(800), Millis(950),  Millis(1200)};
  std::vector<Snapshot> snaps;
  scenario::ScenarioHooks hooks;
  hooks.on_start = [&](Cluster& cluster) {
    std::printf("cluster: %s\n\n", cluster.config().ToString().c_str());
    for (SimTime mark : phase_marks) {
      cluster.sim().ScheduleAt(
          mark, [&snaps, &cluster] { snaps.push_back(TakeSnapshot(cluster)); });
    }
  };
  hooks.on_event = [](Cluster&, const scenario::ScenarioEvent& event,
                      const Status& outcome) {
    std::printf("switch to %s requested: %s\n",
                scenario::SeeMoReModeToken(event.target_mode),
                outcome.ToString().c_str());
  };

  Result<scenario::ScenarioReport> run =
      scenario::RunScenario(builder.spec(), hooks);
  if (!run.ok()) {
    std::fprintf(stderr, "%s\n", run.status().ToString().c_str());
    return 2;
  }
  const scenario::ScenarioReport& report = *run;

  // 4. Per-phase story: Dog sheds the passive private node's load, Peacock
  //    idles the private cloud entirely.
  std::printf("\n");
  if (snaps.size() == 6) {
    PrintPhase("Lion", snaps[0], snaps[1]);
    PrintPhase("Dog", snaps[2], snaps[3]);
    PrintPhase("Peacock", snaps[4], snaps[5]);
  }

  std::printf("\nagreement across all replicas and modes: %s\n",
              report.agreement.ToString().c_str());
  std::printf("convergence after drain: %s\n",
              report.convergence.ToString().c_str());
  return report.ok() ? 0 : 1;
}
