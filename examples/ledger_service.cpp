// Permissioned-ledger ordering service (the paper's §1 Hyperledger Fabric
// motivation): SeeMoRe in Peacock mode orders transactions into a
// hash-chained append-only ledger, with an actively Byzantine proxy in the
// mix. The deployment, the ledger state machine and the Byzantine injection
// are all declared in the ScenarioSpec; the submitting organizations ride
// in via hooks. Every honest replica ends with the identical chain head.

#include <cstdio>
#include <string>

#include "scenario/builder.h"
#include "scenario/engine.h"
#include "smr/ledger.h"

using namespace seemore;

int main() {
  // Peacock: ordering runs entirely in the public cloud; the private cloud
  // only receives INFORMs — e.g. an enterprise keeping verifiers on-prem.
  // One public proxy misbehaves from the start (votes for corrupted digests
  // and lies to clients) — within the m=1 budget.
  scenario::ScenarioBuilder builder;
  builder.Name("ledger-service")
      .SeeMoRe(SeeMoReMode::kPeacock, /*c=*/1, /*m=*/1)
      .CloudSizes(/*s=*/2, /*p=*/4)
      .Seed(31)
      .Ledger()
      .Clients(0)  // the two organizations below submit directly
      .ByzantineAt(0, /*replica=*/4, kByzWrongVotes | kByzLieToClients)
      .Warmup(Millis(10))
      .Measure(Millis(100))
      .Drain(Millis(200))
      .CheckConvergence();

  int confirmed = 0;
  Digest head;
  uint64_t length = 0;
  int matching = 0;

  scenario::ScenarioHooks hooks;
  hooks.on_start = [&confirmed](Cluster& cluster) {
    std::printf("ordering service up: %s, replica 4 is Byzantine\n",
                cluster.config().ToString().c_str());
    // Two submitting organizations.
    SimClient* org_a = cluster.AddClient();
    SimClient* org_b = cluster.AddClient();
    auto on_append = [&confirmed](const Bytes& result) {
      LedgerReply reply = ParseLedgerReply(result);
      if (reply.ok) ++confirmed;
    };
    for (int i = 0; i < 10; ++i) {
      org_a->SubmitOne(MakeLedgerAppend("orgA/tx-" + std::to_string(i)),
                       on_append);
      org_b->SubmitOne(MakeLedgerAppend("orgB/tx-" + std::to_string(i)),
                       on_append);
    }
  };
  hooks.on_finish = [&](Cluster& cluster) {
    // Let the tail of INFORMs reach the private cloud before auditing.
    cluster.sim().Run();
    // Read back the chain head through the quorum (m+1 matching replies
    // keep the liar from forging it).
    bool done = false;
    cluster.client(0)->SubmitOne(MakeLedgerHead(), [&](const Bytes& result) {
      LedgerReply reply = ParseLedgerReply(result);
      head = reply.chain_head;
      length = reply.index;
      done = true;
    });
    while (!done && cluster.sim().Step()) {
    }

    std::printf("confirmed %d transactions; ledger length %llu\n", confirmed,
                static_cast<unsigned long long>(length));
    std::printf("chain head: %s...\n", head.ShortHex().c_str());

    // Every honest replica holds the identical chain.
    for (int i = 0; i < cluster.n(); ++i) {
      if (i == 4) continue;  // the Byzantine node's word is worthless anyway
      auto* ledger = static_cast<LedgerStateMachine*>(
          cluster.replica(i)->exec().state_machine());
      std::printf("  replica %d: length=%llu head=%s...\n", i,
                  static_cast<unsigned long long>(ledger->length()),
                  ledger->chain_head().ShortHex().c_str());
      if (ledger->chain_head() == head && ledger->length() == length) {
        ++matching;
      }
    }
  };

  Result<scenario::ScenarioReport> run =
      scenario::RunScenario(builder.spec(), hooks);
  if (!run.ok()) {
    std::fprintf(stderr, "%s\n", run.status().ToString().c_str());
    return 2;
  }
  const scenario::ScenarioReport& report = *run;
  std::printf("replicas matching the quorum head: %d/5, agreement: %s, "
              "convergence: %s\n",
              matching, report.agreement.ToString().c_str(),
              report.convergence.ToString().c_str());
  return (report.ok() && confirmed == 20 && matching == 5) ? 0 : 1;
}
