// Permissioned-ledger ordering service (the paper's §1 Hyperledger Fabric
// motivation): SeeMoRe in Peacock mode orders transactions into a
// hash-chained append-only ledger, with an actively Byzantine proxy in the
// mix. Every honest replica ends with the identical chain head.

#include <cstdio>
#include <string>

#include "harness/cluster.h"
#include "smr/ledger.h"

using namespace seemore;

int main() {
  ClusterOptions options;
  options.config.kind = ProtocolKind::kSeeMoRe;
  options.config.s = 2;
  options.config.p = 4;
  options.config.c = 1;
  options.config.m = 1;
  // Peacock: ordering runs entirely in the public cloud; the private cloud
  // only receives INFORMs — e.g. an enterprise keeping verifiers on-prem.
  options.config.initial_mode = SeeMoReMode::kPeacock;
  options.seed = 31;
  options.state_machine_factory = [] {
    return std::make_unique<LedgerStateMachine>();
  };
  Cluster cluster(options);

  // One public proxy misbehaves throughout (votes for corrupted digests and
  // lies to clients) — within the m=1 budget.
  cluster.SetByzantine(4, kByzWrongVotes | kByzLieToClients);
  std::printf("ordering service up: %s, replica 4 is Byzantine\n",
              cluster.config().ToString().c_str());

  // Two submitting organizations.
  SimClient* org_a = cluster.AddClient();
  SimClient* org_b = cluster.AddClient();
  int confirmed = 0;
  auto on_append = [&confirmed](const Bytes& result) {
    LedgerReply reply = ParseLedgerReply(result);
    if (reply.ok) ++confirmed;
  };
  for (int i = 0; i < 10; ++i) {
    org_a->SubmitOne(MakeLedgerAppend("orgA/tx-" + std::to_string(i)),
                     on_append);
    org_b->SubmitOne(MakeLedgerAppend("orgB/tx-" + std::to_string(i)),
                     on_append);
  }
  cluster.sim().Run();

  // Read back the chain head through the quorum (m+1 matching replies keep
  // the liar from forging it).
  Digest head;
  uint64_t length = 0;
  bool done = false;
  org_a->SubmitOne(MakeLedgerHead(), [&](const Bytes& result) {
    LedgerReply reply = ParseLedgerReply(result);
    head = reply.chain_head;
    length = reply.index;
    done = true;
  });
  while (!done && cluster.sim().Step()) {
  }

  std::printf("confirmed %d transactions; ledger length %llu\n", confirmed,
              static_cast<unsigned long long>(length));
  std::printf("chain head: %s...\n", head.ShortHex().c_str());

  // Every honest replica holds the identical chain.
  int matching = 0;
  for (int i = 0; i < cluster.n(); ++i) {
    if (i == 4) continue;  // the Byzantine node's word is worthless anyway
    auto* ledger =
        static_cast<LedgerStateMachine*>(cluster.replica(i)->exec().state_machine());
    std::printf("  replica %d: length=%llu head=%s...\n", i,
                static_cast<unsigned long long>(ledger->length()),
                ledger->chain_head().ShortHex().c_str());
    if (ledger->chain_head() == head && ledger->length() == length) {
      ++matching;
    }
  }
  Status agreement = cluster.CheckAgreement();
  std::printf("replicas matching the quorum head: %d/5, agreement: %s\n",
              matching, agreement.ToString().c_str());
  return (agreement.ok() && confirmed == 20 && matching == 5) ? 0 : 1;
}
