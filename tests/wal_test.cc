// The storage substrate in isolation: WAL framing and recovery (round
// trips, segment rolls, GC), the MemMedium failure semantics (process kill
// vs power loss), the snapshot store, and the fixed-seed torn-write /
// bit-flip fuzz over recovery: every probe must end in a clean
// prefix-preserving truncation or a typed kCorruption — never a crash, a
// hang, or silently divergent records.

#include <gtest/gtest.h>

#include "storage/crc32c.h"
#include "storage/file_store.h"
#include "storage/medium.h"
#include "storage/snapshot_store.h"
#include "storage/wal.h"
#include "util/logging.h"
#include "util/rng.h"

namespace seemore {
namespace storage {
namespace {

Bytes Payload(uint64_t tag, size_t size) {
  Bytes bytes(size);
  for (size_t i = 0; i < size; ++i) {
    bytes[i] = static_cast<uint8_t>(tag * 131 + i);
  }
  return bytes;
}

/// Append `count` deterministic variable-size records to a fresh WAL.
std::vector<Bytes> FillWal(MemMedium& medium, const WalOptions& options,
                           int count) {
  WriteAheadLog wal(&medium, options);
  SEEMORE_CHECK(wal.Create().ok());
  std::vector<Bytes> payloads;
  for (int i = 0; i < count; ++i) {
    payloads.push_back(Payload(static_cast<uint64_t>(i), 16 + (i * 7) % 90));
    SEEMORE_CHECK(
        wal.Append(payloads.back(), static_cast<uint64_t>(i)).ok());
  }
  SEEMORE_CHECK(wal.Sync().ok());
  return payloads;
}

TEST(Crc32cTest, MatchesKnownVectors) {
  // RFC 3720 test vector: 32 zero bytes.
  Bytes zeros(32, 0);
  EXPECT_EQ(Crc32c(zeros.data(), zeros.size()), 0x8a9136aau);
  // An all-ones block, same source.
  Bytes ones(32, 0xff);
  EXPECT_EQ(Crc32c(ones.data(), ones.size()), 0x62a8ab43u);
  // Incremental == one-shot.
  Bytes data = Payload(3, 100);
  uint32_t whole = Crc32c(data.data(), data.size());
  uint32_t split =
      Crc32cExtend(Crc32c(data.data(), 40), data.data() + 40, 60);
  EXPECT_EQ(whole, split);
}

TEST(WalTest, RoundTripsRecordsInOrder) {
  MemMedium medium;
  const std::vector<Bytes> payloads = FillWal(medium, WalOptions(), 50);
  Result<WalRecovery> recovered = RecoverWal(medium);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(recovered->payloads, payloads);
  EXPECT_EQ(recovered->truncated_bytes, 0u);
  EXPECT_EQ(recovered->segments_scanned, 1u);
}

TEST(WalTest, RollsSegmentsAndRecoversAcrossThem) {
  MemMedium medium;
  WalOptions options;
  options.segment_bytes = 512;  // force frequent rolls
  const std::vector<Bytes> payloads = FillWal(medium, options, 60);
  ASSERT_GT(medium.List("wal-").size(), 3u);
  Result<WalRecovery> recovered = RecoverWal(medium);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(recovered->payloads, payloads);
  EXPECT_EQ(recovered->truncated_bytes, 0u);
}

TEST(WalTest, GcDropsOnlyFullyCoveredSealedSegments) {
  MemMedium medium;
  WalOptions options;
  options.segment_bytes = 512;
  WriteAheadLog wal(&medium, options);
  ASSERT_TRUE(wal.Create().ok());
  for (int i = 0; i < 60; ++i) {
    ASSERT_TRUE(wal.Append(Payload(i, 64), static_cast<uint64_t>(i)).ok());
  }
  const size_t before = medium.List("wal-").size();
  ASSERT_GT(before, 3u);
  ASSERT_TRUE(wal.GcBelow(30).ok());
  const size_t after = medium.List("wal-").size();
  EXPECT_LT(after, before);
  // Everything the GC kept still recovers, and records above the floor
  // all survive.
  Result<WalRecovery> recovered = RecoverWal(medium);
  ASSERT_TRUE(recovered.ok());
  size_t above_floor = 0;
  for (const Bytes& payload : recovered->payloads) {
    for (int i = 30; i < 60; ++i) {
      if (payload == Payload(i, 64)) ++above_floor;
    }
  }
  EXPECT_EQ(above_floor, 30u);
}

TEST(WalTest, RefusesCreateOverExistingSegments) {
  MemMedium medium;
  FillWal(medium, WalOptions(), 5);
  WriteAheadLog second(&medium, WalOptions());
  EXPECT_EQ(second.Create().code(), StatusCode::kFailedPrecondition);
}

TEST(WalTest, FsyncIntervalBatchesSyncs) {
  MemMedium every;
  WalOptions one;
  one.fsync_interval = 1;
  FillWal(every, one, 32);

  MemMedium batched;
  WalOptions eight;
  eight.fsync_interval = 8;
  FillWal(batched, eight, 32);

  EXPECT_GT(every.sync_calls(), batched.sync_calls());
  // One sync per append; FillWal's trailing Sync() is a no-op (nothing
  // unsynced).
  EXPECT_EQ(every.sync_calls(), 32u);
}

TEST(MemMediumTest, ProcessKillKeepsUnsyncedBytes) {
  // Nothing happens to the medium on a process kill: recovery sees every
  // appended record whether or not it was synced.
  MemMedium medium;
  WalOptions options;
  options.fsync_interval = 1000;  // never auto-sync
  WriteAheadLog wal(&medium, options);
  ASSERT_TRUE(wal.Create().ok());
  ASSERT_TRUE(wal.Append(Payload(1, 64), 1).ok());
  ASSERT_TRUE(wal.Append(Payload(2, 64), 2).ok());
  Result<WalRecovery> recovered = RecoverWal(medium);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(recovered->payloads.size(), 2u);
}

TEST(MemMediumTest, PowerLossRollsBackToDurableSectors) {
  MemMedium medium;
  WalOptions options;
  options.fsync_interval = 1000;
  WriteAheadLog wal(&medium, options);
  ASSERT_TRUE(wal.Create().ok());
  ASSERT_TRUE(wal.Append(Payload(1, 64), 1).ok());
  ASSERT_TRUE(wal.Sync().ok());  // first record durable
  for (int i = 2; i < 30; ++i) {
    ASSERT_TRUE(wal.Append(Payload(i, 64), static_cast<uint64_t>(i)).ok());
  }
  const std::string segment = WalSegmentName(0);
  const uint64_t full = *medium.SizeOf(segment);
  medium.PowerLoss();
  const uint64_t kept = *medium.SizeOf(segment);
  // The synced prefix survives; the unsynced tail is cut at sector
  // granularity, leaving at most a torn record at the edge.
  EXPECT_GE(kept, medium.DurableSize(segment));
  EXPECT_EQ(kept, std::max(medium.DurableSize(segment),
                           full / MemMedium::kTornSector *
                               MemMedium::kTornSector));
  Result<WalRecovery> recovered = RecoverWal(medium);
  ASSERT_TRUE(recovered.ok());
  ASSERT_GE(recovered->payloads.size(), 1u);  // the synced record
  EXPECT_LT(recovered->payloads.size(), 29u);
  EXPECT_EQ(recovered->payloads[0], Payload(1, 64));
}

TEST(WalFuzzTest, EveryTruncationOffsetRecoversCleanly) {
  // Chop the (single-segment) log at EVERY byte offset: recovery must
  // always succeed with a prefix of the original records — a torn tail is
  // never corruption, and no cut can make the scanner resurrect a record
  // the baseline did not hold.
  MemMedium baseline;
  const std::vector<Bytes> payloads = FillWal(baseline, WalOptions(), 40);
  const std::string segment = WalSegmentName(0);
  const uint64_t size = *baseline.SizeOf(segment);
  for (uint64_t cut = 0; cut < size; ++cut) {
    std::unique_ptr<MemMedium> probe = baseline.Clone();
    ASSERT_TRUE(probe->TruncateTo(segment, cut).ok());
    Result<WalRecovery> recovered = RecoverWal(*probe);
    ASSERT_TRUE(recovered.ok()) << "cut at " << cut << ": "
                                << recovered.status().ToString();
    ASSERT_LE(recovered->payloads.size(), payloads.size());
    for (size_t i = 0; i < recovered->payloads.size(); ++i) {
      ASSERT_EQ(recovered->payloads[i], payloads[i]) << "cut at " << cut;
    }
    // Deterministic: recovering the same image twice agrees byte for byte.
    Result<WalRecovery> again = RecoverWal(*probe);
    ASSERT_TRUE(again.ok());
    ASSERT_EQ(again->payloads, recovered->payloads);
    ASSERT_EQ(again->truncated_bytes, recovered->truncated_bytes);
  }
}

TEST(WalFuzzTest, RandomBitFlipsRecoverOrRefuseTyped) {
  // Fixed-seed golden replay: flip one random bit per probe. Recovery must
  // either (a) succeed with a strict prefix of the baseline records (the
  // flip landed in the reclaimable tail region) or (b) refuse with
  // kCorruption (intact records prove bytes were altered, not torn). Any
  // other outcome — a crash, a non-prefix record list, a different answer
  // on the second scan — is a bug.
  MemMedium baseline;
  WalOptions options;
  options.segment_bytes = 4096;  // several sealed segments + one open
  const std::vector<Bytes> payloads = FillWal(baseline, options, 160);
  const std::vector<std::string> segments = baseline.List("wal-");
  ASSERT_GT(segments.size(), 2u);

  Rng rng(0xD15C0FA7u);
  int truncations = 0;
  int refusals = 0;
  for (int probe = 0; probe < 256; ++probe) {
    const std::string& victim =
        segments[rng.NextBounded(segments.size())];
    std::unique_ptr<MemMedium> clone = baseline.Clone();
    const uint64_t size = *clone->SizeOf(victim);
    const uint64_t offset = rng.NextBounded(size);
    const int bit = static_cast<int>(rng.NextBounded(8));
    ASSERT_TRUE(clone->FlipBit(victim, offset, bit).ok());

    Result<WalRecovery> recovered = RecoverWal(*clone);
    if (recovered.ok()) {
      ++truncations;
      ASSERT_LT(recovered->payloads.size(), payloads.size());
      for (size_t i = 0; i < recovered->payloads.size(); ++i) {
        ASSERT_EQ(recovered->payloads[i], payloads[i])
            << victim << " offset " << offset << " bit " << bit;
      }
      ASSERT_GT(recovered->truncated_bytes, 0u);
    } else {
      ++refusals;
      ASSERT_EQ(recovered.status().code(), StatusCode::kCorruption)
          << victim << " offset " << offset << " bit " << bit;
    }
    Result<WalRecovery> again = RecoverWal(*clone);
    ASSERT_EQ(again.ok(), recovered.ok());
    if (again.ok()) {
      ASSERT_EQ(again->payloads, recovered->payloads);
    }
  }
  // Both outcomes must actually occur under this seed, or the oracle is
  // vacuous (e.g. flips in sealed segments always refuse; flips in the
  // open segment's tail record always truncate).
  EXPECT_GT(truncations, 0);
  EXPECT_GT(refusals, 0);
}

TEST(SnapshotStoreTest, RoundTripsSnapshotsWithCerts) {
  MemMedium medium;
  SnapshotStore store(&medium);
  const Bytes state1 = Payload(1, 300);
  const Bytes state2 = Payload(2, 500);
  ASSERT_TRUE(store.Save(16, Digest::Of(state1), state1).ok());
  ASSERT_TRUE(store.SaveCert(16, CheckpointCert::Genesis()).ok());
  ASSERT_TRUE(store.SyncAt(16).ok());
  ASSERT_TRUE(store.Save(32, Digest::Of(state2), state2).ok());

  uint64_t skipped = 0;
  std::vector<RecoveredSnapshot> all = SnapshotStore::LoadAll(medium,
                                                              &skipped);
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(skipped, 0u);
  EXPECT_EQ(all[0].seq, 16u);
  EXPECT_TRUE(all[0].has_cert);
  EXPECT_EQ(all[0].bytes, state1);
  EXPECT_EQ(all[0].digest, Digest::Of(state1));
  EXPECT_EQ(all[1].seq, 32u);
  EXPECT_FALSE(all[1].has_cert);  // cut but never stable
  EXPECT_EQ(all[1].bytes, state2);
}

TEST(SnapshotStoreTest, DamagedSnapshotIsSkippedNotFatal) {
  MemMedium medium;
  SnapshotStore store(&medium);
  const Bytes state1 = Payload(1, 300);
  const Bytes state2 = Payload(2, 300);
  ASSERT_TRUE(store.Save(16, Digest::Of(state1), state1).ok());
  ASSERT_TRUE(store.Save(32, Digest::Of(state2), state2).ok());
  ASSERT_TRUE(medium.FlipBit(SnapshotFileName(32), 40, 3).ok());

  uint64_t skipped = 0;
  std::vector<RecoveredSnapshot> all = SnapshotStore::LoadAll(medium,
                                                              &skipped);
  // The newer snapshot is damaged: it falls out of the candidate list and
  // the older one still restores — recovery degrades, it does not fail.
  ASSERT_EQ(all.size(), 1u);
  EXPECT_EQ(all[0].seq, 16u);
  EXPECT_EQ(skipped, 1u);
}

TEST(SnapshotStoreTest, GcRemovesOnlyBelow) {
  MemMedium medium;
  SnapshotStore store(&medium);
  for (uint64_t seq : {16u, 32u, 48u}) {
    const Bytes state = Payload(seq, 100);
    ASSERT_TRUE(store.Save(seq, Digest::Of(state), state).ok());
    ASSERT_TRUE(store.SaveCert(seq, CheckpointCert::Genesis()).ok());
  }
  ASSERT_TRUE(store.GcBelow(48).ok());
  std::vector<RecoveredSnapshot> all = SnapshotStore::LoadAll(medium);
  ASSERT_EQ(all.size(), 1u);
  EXPECT_EQ(all[0].seq, 48u);
}

}  // namespace
}  // namespace storage
}  // namespace seemore
