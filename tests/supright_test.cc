// S-UpRight integration tests: the hybrid failure budget (c crashes PLUS m
// Byzantine simultaneously) over N = 3m+2c+1 replicas with 2m+c+1 quorums.

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace seemore {
namespace {

using testing::RunBurst;
using testing::SubmitAndWait;
using testing::SUpRightOptions;

TEST(SUpRightTest, TopologyMatchesPaper) {
  Cluster cluster(SUpRightOptions(/*c=*/1, /*m=*/1));
  EXPECT_EQ(cluster.n(), 6);  // 3m+2c+1
  ClusterOptions big = SUpRightOptions(1, 3);
  EXPECT_EQ(big.config.n(), 12);  // Fig 2(c) S-UpRight size
}

TEST(SUpRightTest, CommitsSingleRequest) {
  Cluster cluster(SUpRightOptions(1, 1));
  SimClient* client = cluster.AddClient();
  auto result = SubmitAndWait(cluster, client, MakePut("k", "v"));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(ParseKvReply(*result).status, KvResult::kOk);
}

TEST(SUpRightTest, FullFailureBudget) {
  // c=1 crash AND m=1 Byzantine at the same time must not block progress.
  Cluster cluster(SUpRightOptions(1, 1));
  cluster.Crash(1);
  cluster.SetByzantine(4, kByzWrongVotes);
  const uint64_t completed = RunBurst(cluster, 4, Millis(300));
  EXPECT_GT(completed, 30u);
  EXPECT_TRUE(cluster.CheckAgreement().ok());
}

TEST(SUpRightTest, PrimaryCrashViewChange) {
  Cluster cluster(SUpRightOptions(1, 1));
  SimClient* client = cluster.AddClient();
  ASSERT_TRUE(SubmitAndWait(cluster, client, MakePut("a", "1")).ok());
  cluster.Crash(0);
  auto result = SubmitAndWait(cluster, client, MakePut("b", "2"));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  auto get = SubmitAndWait(cluster, client, MakeGet("a"));
  ASSERT_TRUE(get.ok());
  EXPECT_EQ(ParseKvReply(*get).value, "1");
  EXPECT_TRUE(cluster.CheckAgreement().ok());
}

TEST(SUpRightTest, ClientNeedsOnlyMPlusOneMatching) {
  // With m=1, 2 matching replies suffice even while a replica lies.
  Cluster cluster(SUpRightOptions(1, 1));
  cluster.SetByzantine(5, kByzLieToClients);
  SimClient* client = cluster.AddClient();
  ASSERT_TRUE(SubmitAndWait(cluster, client, MakePut("key", "true")).ok());
  auto get = SubmitAndWait(cluster, client, MakeGet("key"));
  ASSERT_TRUE(get.ok());
  EXPECT_EQ(ParseKvReply(*get).value, "true");
}

TEST(SUpRightTest, ReportsUnimplementedUpRightFeatures) {
  // S-UpRight is the paper's simplified comparator, not UpRight proper;
  // the class must say so explicitly.
  Cluster cluster(SUpRightOptions(1, 1));
  auto* replica = static_cast<SUpRightReplica*>(cluster.replica(0));
  EXPECT_GE(SUpRightReplica::UnimplementedFeatures().size(), 3u);
  const std::string description = replica->Describe();
  EXPECT_NE(description.find("S-UpRight"), std::string::npos);
  EXPECT_NE(description.find("N=6"), std::string::npos);      // 3m+2c+1
  EXPECT_NE(description.find("quorum 4"), std::string::npos);  // 2m+c+1
}

TEST(SUpRightTest, LargerHybridBudget) {
  // c=2, m=2 -> N=11, quorum 7.
  Cluster cluster(SUpRightOptions(2, 2));
  EXPECT_EQ(cluster.n(), 11);
  cluster.Crash(0);  // crash a private node (the view-0 primary!)
  cluster.SetByzantine(6, kByzWrongVotes);
  cluster.SetByzantine(7, kByzSilent);
  const uint64_t completed = RunBurst(cluster, 4, Millis(400));
  EXPECT_GT(completed, 20u);
  EXPECT_TRUE(cluster.CheckAgreement().ok());
}

}  // namespace
}  // namespace seemore
