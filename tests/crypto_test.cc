// SHA-256 against NIST/FIPS examples, HMAC-SHA256 against RFC 4231 vectors,
// digest/keystore/signature behaviour.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "crypto/digest.h"
#include "crypto/hmac_sha256.h"
#include "crypto/keystore.h"
#include "crypto/sha256.h"
#include "util/hex.h"

namespace seemore {
namespace {

std::string HashHex(const std::string& input) {
  auto digest = Sha256::Hash(input);
  return HexEncode(digest.data(), digest.size());
}

TEST(Sha256Test, EmptyString) {
  EXPECT_EQ(HashHex(""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, Abc) {
  EXPECT_EQ(HashHex("abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, TwoBlockMessage) {
  EXPECT_EQ(HashHex("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, MillionAs) {
  Sha256 h;
  std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.Update(chunk);
  uint8_t out[Sha256::kDigestSize];
  h.Final(out);
  EXPECT_EQ(HexEncode(out, sizeof(out)),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, IncrementalMatchesOneShot) {
  const std::string data =
      "The quick brown fox jumps over the lazy dog, repeatedly and "
      "deterministically, across block boundaries of all sizes.";
  auto oneshot = Sha256::Hash(data);
  for (size_t split = 0; split <= data.size(); split += 7) {
    Sha256 h;
    h.Update(data.substr(0, split));
    h.Update(data.substr(split));
    uint8_t out[Sha256::kDigestSize];
    h.Final(out);
    EXPECT_EQ(0, memcmp(out, oneshot.data(), sizeof(out))) << "split=" << split;
  }
}

TEST(Sha256Test, ExactBlockBoundary) {
  // 64-byte input exercises the padding-to-second-block path.
  std::string input(64, 'x');
  EXPECT_EQ(HashHex(input),
            HashHex(std::string(32, 'x') + std::string(32, 'x')));
  // 55 and 56 bytes straddle the length-field boundary.
  EXPECT_NE(HashHex(std::string(55, 'y')), HashHex(std::string(56, 'y')));
}

// --- SIMD kernel dispatch (sha256.h Impl hook) ---

// Every kernel the CPU supports, portable always included.
std::vector<Sha256::Impl> SupportedImpls() {
  std::vector<Sha256::Impl> impls = {Sha256::Impl::kPortable};
  if (Sha256::ImplSupported(Sha256::Impl::kAvx2)) {
    impls.push_back(Sha256::Impl::kAvx2);
  }
  if (Sha256::ImplSupported(Sha256::Impl::kShaNi)) {
    impls.push_back(Sha256::Impl::kShaNi);
  }
  return impls;
}

// Restores auto-detected dispatch even if a test fails mid-way.
struct ImplGuard {
  ~ImplGuard() { Sha256::ResetImpl(); }
};

TEST(Sha256DispatchTest, ForceImplRoundTrip) {
  ImplGuard guard;
  for (Sha256::Impl impl : SupportedImpls()) {
    ASSERT_TRUE(Sha256::ForceImpl(impl));
    EXPECT_EQ(Sha256::ActiveImpl(), impl);
  }
  Sha256::ResetImpl();
  // Auto-detection picks a supported kernel.
  EXPECT_TRUE(Sha256::ImplSupported(Sha256::ActiveImpl()));
}

TEST(Sha256DispatchTest, UnsupportedImplRefused) {
  // On a machine without SHA-NI, forcing it must fail and leave dispatch
  // unchanged. (On capable machines this test is vacuous for kShaNi.)
  ImplGuard guard;
  Sha256::Impl before = Sha256::ActiveImpl();
  if (!Sha256::ImplSupported(Sha256::Impl::kShaNi)) {
    EXPECT_FALSE(Sha256::ForceImpl(Sha256::Impl::kShaNi));
    EXPECT_EQ(Sha256::ActiveImpl(), before);
  }
}

// NIST vectors must pass under every kernel, not just the default one.
TEST(Sha256DispatchTest, NistVectorsUnderEveryImpl) {
  ImplGuard guard;
  for (Sha256::Impl impl : SupportedImpls()) {
    ASSERT_TRUE(Sha256::ForceImpl(impl));
    EXPECT_EQ(HashHex(""),
              "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
    EXPECT_EQ(HashHex("abc"),
              "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
    EXPECT_EQ(
        HashHex("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
        "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
    EXPECT_EQ(
        HashHex(
            "abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmno"
            "ijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu"),
        "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1");
  }
}

// Cross-check all kernels agree on random inputs of every length class:
// empty, sub-block, exact block boundaries, straddling lengths, and
// multi-block (the multi-block kernel loop is its own code path).
TEST(Sha256DispatchTest, ImplsAgreeOnEveryLengthClass) {
  ImplGuard guard;
  const std::vector<Sha256::Impl> impls = SupportedImpls();
  std::vector<size_t> lengths = {0,  1,  31,  55,  56,  63,  64,
                                 65, 119, 127, 128, 129, 192, 1000};
  uint64_t rng = 0x9e3779b97f4a7c15ULL;  // fixed seed: deterministic inputs
  for (size_t len : lengths) {
    std::vector<uint8_t> input(len);
    for (auto& b : input) {
      rng = rng * 6364136223846793005ULL + 1442695040888963407ULL;
      b = static_cast<uint8_t>(rng >> 56);
    }
    ASSERT_TRUE(Sha256::ForceImpl(Sha256::Impl::kPortable));
    auto expected = Sha256::Hash(input);
    for (Sha256::Impl impl : impls) {
      ASSERT_TRUE(Sha256::ForceImpl(impl));
      // One-shot and incremental (odd-sized chunks cross block boundaries).
      EXPECT_EQ(Sha256::Hash(input), expected)
          << "len=" << len << " impl=" << static_cast<int>(impl);
      Sha256 h;
      for (size_t off = 0; off < len; off += 37) {
        h.Update(input.data() + off, std::min<size_t>(37, len - off));
      }
      std::array<uint8_t, Sha256::kDigestSize> out;
      h.Final(out.data());
      EXPECT_EQ(out, expected)
          << "len=" << len << " impl=" << static_cast<int>(impl);
    }
  }
}

// RFC 4231 test case 1.
TEST(HmacSha256Test, Rfc4231Case1) {
  std::vector<uint8_t> key(20, 0x0b);
  std::string data = "Hi There";
  auto tag = HmacSha256::Mac(key.data(), key.size(),
                             reinterpret_cast<const uint8_t*>(data.data()),
                             data.size());
  EXPECT_EQ(HexEncode(tag.data(), tag.size()),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

// RFC 4231 test case 2 ("Jefe").
TEST(HmacSha256Test, Rfc4231Case2) {
  std::string key = "Jefe";
  std::string data = "what do ya want for nothing?";
  auto tag = HmacSha256::Mac(reinterpret_cast<const uint8_t*>(key.data()),
                             key.size(),
                             reinterpret_cast<const uint8_t*>(data.data()),
                             data.size());
  EXPECT_EQ(HexEncode(tag.data(), tag.size()),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

// RFC 4231 test case 3 (0xaa key, 0xdd data).
TEST(HmacSha256Test, Rfc4231Case3) {
  std::vector<uint8_t> key(20, 0xaa);
  std::vector<uint8_t> data(50, 0xdd);
  auto tag = HmacSha256::Mac(key, data);
  EXPECT_EQ(HexEncode(tag.data(), tag.size()),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

// RFC 4231 test case 6: key longer than the block size.
TEST(HmacSha256Test, Rfc4231Case6LongKey) {
  std::vector<uint8_t> key(131, 0xaa);
  std::string data = "Test Using Larger Than Block-Size Key - Hash Key First";
  auto tag = HmacSha256::Mac(key.data(), key.size(),
                             reinterpret_cast<const uint8_t*>(data.data()),
                             data.size());
  EXPECT_EQ(HexEncode(tag.data(), tag.size()),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(HmacSha256Test, ConstantTimeEqual) {
  uint8_t a[4] = {1, 2, 3, 4};
  uint8_t b[4] = {1, 2, 3, 4};
  uint8_t c[4] = {1, 2, 3, 5};
  EXPECT_TRUE(HmacSha256::Equal(a, b, 4));
  EXPECT_FALSE(HmacSha256::Equal(a, c, 4));
}

TEST(DigestTest, RoundTripAndComparison) {
  Digest a = Digest::Of(std::string("hello"));
  Digest b = Digest::Of(std::string("hello"));
  Digest c = Digest::Of(std::string("world"));
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_FALSE(a.IsZero());
  EXPECT_TRUE(Digest().IsZero());

  Encoder enc;
  a.EncodeTo(enc);
  Decoder dec(enc.bytes());
  Digest decoded = Digest::DecodeFrom(dec);
  EXPECT_TRUE(dec.AtEnd());
  EXPECT_EQ(a, decoded);
  EXPECT_EQ(a.ToHex().size(), 64u);
  EXPECT_EQ(a.ShortHex(), a.ToHex().substr(0, 8));
}

TEST(KeyStoreTest, SignVerifyRoundTrip) {
  KeyStore store(42);
  Signer alice(3, store);
  Bytes msg = {1, 2, 3, 4, 5};
  Signature sig = alice.Sign(msg);
  EXPECT_TRUE(store.Verify(3, msg, sig));
  EXPECT_FALSE(store.Verify(4, msg, sig));  // wrong principal
  Bytes altered = msg;
  altered[0] ^= 1;
  EXPECT_FALSE(store.Verify(3, altered, sig));
}

TEST(KeyStoreTest, AdversaryCannotForge) {
  KeyStore store(42);
  Signer byzantine(7, store);
  Bytes msg = {9, 9, 9};
  // The Byzantine node can only produce ITS OWN signatures; they never
  // verify as another principal's (§3.1 adversary model).
  Signature forged = byzantine.Sign(msg);
  for (PrincipalId victim = 0; victim < 6; ++victim) {
    EXPECT_FALSE(store.Verify(victim, msg, forged));
  }
}

TEST(KeyStoreTest, DistinctSeedsDistinctKeys) {
  KeyStore a(1), b(2);
  Signer signer_a(0, a);
  Bytes msg = {1};
  EXPECT_FALSE(b.Verify(0, msg, signer_a.Sign(msg)));
}

TEST(SignatureTest, EncodeDecode) {
  KeyStore store(5);
  Signer signer(1, store);
  Signature sig = signer.Sign(Bytes{1, 2, 3});
  Encoder enc;
  sig.EncodeTo(enc);
  Decoder dec(enc.bytes());
  Signature decoded = Signature::DecodeFrom(dec);
  EXPECT_TRUE(dec.AtEnd());
  EXPECT_TRUE(sig == decoded);
}

}  // namespace
}  // namespace seemore
