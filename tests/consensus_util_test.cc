// Consensus toolkit: batches, vote trackers, the instance log, the primary
// pipeline, checkpoint certificates, prepared proofs, cluster-config role
// assignment.

#include <gtest/gtest.h>

#include "consensus/batch.h"
#include "consensus/checkpoint.h"
#include "consensus/config.h"
#include "consensus/instance_log.h"
#include "consensus/primary_pipeline.h"
#include "consensus/proofs.h"
#include "consensus/quorum_tracker.h"
#include "smr/kv_store.h"

namespace seemore {
namespace {

Request TestRequest(uint64_t ts) {
  Request r;
  r.client = kClientIdBase;
  r.timestamp = ts;
  r.op = MakeNoop();
  return r;
}

TEST(BatchTest, EncodeDecodeRoundTrip) {
  Batch batch{{TestRequest(1), TestRequest(2)}};
  Bytes encoded = batch.Encode();
  auto decoded = Batch::Decode(encoded);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->size(), 2u);
  EXPECT_EQ(decoded->ComputeDigest(), batch.ComputeDigest());
}

TEST(BatchTest, NoopIsEmptyAndStable) {
  Batch noop = Batch::Noop();
  EXPECT_TRUE(noop.IsNoop());
  EXPECT_EQ(noop.ComputeDigest(), Batch::Noop().ComputeDigest());
}

TEST(BatchTest, OversizedCountRejected) {
  Encoder enc;
  enc.PutVarint(1 << 20);  // absurd request count
  EXPECT_FALSE(Batch::Decode(enc.bytes()).ok());
}

TEST(VoteTrackerTest, CountsDistinctVoters) {
  VoteTracker votes;
  Digest a = Digest::Of(std::string("a"));
  Digest b = Digest::Of(std::string("b"));
  EXPECT_TRUE(votes.Add(a, 1).counted);
  EXPECT_FALSE(votes.Add(a, 1).counted);  // duplicate voter ignored
  votes.Add(a, 2);
  votes.Add(b, 3);
  EXPECT_EQ(votes.Count(a), 2u);
  EXPECT_EQ(votes.Count(b), 1u);
  EXPECT_TRUE(votes.Reached(a, 2));
  EXPECT_FALSE(votes.Reached(a, 3));
  EXPECT_TRUE(votes.HasVoted(a, 1));
  EXPECT_FALSE(votes.HasVoted(b, 1));
}

TEST(VoteTrackerTest, EquivocationFlaggedOnceAndNeverCounted) {
  VoteTracker votes;
  Digest a = Digest::Of(std::string("a"));
  Digest b = Digest::Of(std::string("b"));
  EXPECT_TRUE(votes.Add(a, 1).counted);
  // Conflicting vote: rejected, flagged exactly once.
  VoteOutcome conflict = votes.Add(b, 1);
  EXPECT_FALSE(conflict.counted);
  EXPECT_TRUE(conflict.equivocation);
  // Repeat: still rejected, but not re-flagged.
  conflict = votes.Add(b, 1);
  EXPECT_FALSE(conflict.counted);
  EXPECT_FALSE(conflict.equivocation);
  EXPECT_EQ(votes.Count(a), 1u);
  EXPECT_EQ(votes.Count(b), 0u);  // never double-counted toward a quorum
  EXPECT_EQ(votes.equivocators(), 1u);
  // Re-affirming the original value stays idempotent, not an equivocation.
  VoteOutcome again = votes.Add(a, 1);
  EXPECT_FALSE(again.counted);
  EXPECT_FALSE(again.equivocation);
}

TEST(QuorumTrackerTest, KeepsSignaturesAndFlagsEquivocators) {
  KeyStore store(1);
  Signer s1(1, store), s2(2, store);
  QuorumTracker votes;
  Digest d = Digest::Of(std::string("x"));
  Digest other = Digest::Of(std::string("y"));
  EXPECT_TRUE(votes.Add(d, 1, s1.Sign(Bytes{1})).counted);
  EXPECT_TRUE(votes.Add(d, 2, s2.Sign(Bytes{2})).counted);
  QuorumTracker::SignatureView sigs = votes.SignaturesFor(d);
  ASSERT_FALSE(sigs.empty());
  EXPECT_EQ(sigs.size(), 2u);
  EXPECT_TRUE(sigs.count(1));
  EXPECT_TRUE(sigs.count(2));
  // Voter 2 equivocates: flagged once, signature not added to `other`.
  EXPECT_TRUE(votes.Add(other, 2, s2.Sign(Bytes{3})).equivocation);
  EXPECT_FALSE(votes.Add(other, 2, s2.Sign(Bytes{3})).equivocation);
  EXPECT_EQ(votes.Count(other), 0u);
  EXPECT_EQ(votes.equivocators(), 1u);
  EXPECT_TRUE(votes.SignaturesFor(other).empty());
}

TEST(QuorumTrackerTest, SignatureViewSurvivesRehash) {
  KeyStore store(1);
  QuorumTracker votes;
  const Digest watched = Digest::Of(std::string("watched"));

  // Collect signatures for one value, then grab a view of them.
  constexpr PrincipalId kVoters = 40;
  std::vector<Signature> expected;
  for (PrincipalId v = 0; v < kVoters; ++v) {
    Signer signer(v, store);
    Signature sig = signer.Sign(Bytes{static_cast<uint8_t>(v)});
    expected.push_back(sig);
    EXPECT_TRUE(votes.Add(watched, v, sig).counted);
  }
  QuorumTracker::SignatureView view = votes.SignaturesFor(watched);
  ASSERT_EQ(view.size(), kVoters);

  // Force the tracker's outer table through several growth rehashes by
  // voting for many other values, and keep growing the watched value's own
  // table too. The previously-taken view must keep seeing every signature.
  Signer late(kVoters, store);
  for (int i = 0; i < 200; ++i) {
    Digest filler = Digest::Of(std::string("filler-") + std::to_string(i));
    votes.Add(filler, 1, late.Sign(Bytes{9}));
  }
  for (PrincipalId v = kVoters; v < kVoters + 100; ++v) {
    Signer signer(v, store);
    Signature sig = signer.Sign(Bytes{static_cast<uint8_t>(v)});
    expected.push_back(sig);
    EXPECT_TRUE(votes.Add(watched, v, sig).counted);
  }

  auto entries = view.SortedEntries();
  ASSERT_EQ(entries.size(), expected.size());  // no signature lost
  for (size_t i = 0; i < entries.size(); ++i) {
    EXPECT_EQ(entries[i].first, static_cast<PrincipalId>(i));  // sorted
    EXPECT_EQ(entries[i].second, expected[i]);
  }
}

TEST(InstanceLogTest, SlabLookupAndGenerationChecks) {
  InstanceLog log(/*window=*/16);
  EXPECT_EQ(log.occupied(), 0u);
  SlotCore& s5 = log.Slot(5);
  s5.has_batch = true;
  EXPECT_EQ(log.occupied(), 1u);
  EXPECT_EQ(log.Find(5), &s5);
  EXPECT_EQ(log.Find(6), nullptr);  // never claimed: generation miss
  // Same storage object returned on re-access.
  EXPECT_TRUE(log.Slot(5).has_batch);

  // Reclamation frees slots at or below the floor; lookups miss afterwards.
  log.Slot(7).committed = true;
  log.Reclaim(5);
  EXPECT_EQ(log.Find(5), nullptr);
  ASSERT_NE(log.Find(7), nullptr);
  EXPECT_EQ(log.stable(), 5u);
  EXPECT_EQ(log.occupied(), 1u);

  // A seq that maps to a reclaimed slot's index starts fresh.
  SlotCore& reused = log.Slot(5 + log.slab_capacity());
  EXPECT_FALSE(reused.has_batch);
}

TEST(InstanceLogTest, OverflowSpillAndMigration) {
  InstanceLog log(/*window=*/8);
  const uint64_t far = log.slab_capacity() * 10;
  log.Slot(far).commit_seen = true;  // far beyond the window: side map
  log.Slot(2).has_batch = true;
  EXPECT_EQ(log.occupied(), 2u);
  ASSERT_NE(log.Find(far), nullptr);
  EXPECT_TRUE(log.Find(far)->commit_seen);

  // Ascending iteration sees both, in order.
  std::vector<uint64_t> seen;
  log.ForEachAscending(
      [&](uint64_t seq, const SlotCore&) { seen.push_back(seq); });
  EXPECT_EQ(seen, (std::vector<uint64_t>{2, far}));

  // Advancing the floor migrates the side-map entry into the slab.
  log.Reclaim(far - 1);
  ASSERT_NE(log.Find(far), nullptr);
  EXPECT_TRUE(log.Find(far)->commit_seen);
  EXPECT_EQ(log.Find(2), nullptr);
  EXPECT_EQ(log.occupied(), 1u);
}

TEST(InstanceLogTest, UncommittedCountAndEraseUncommitted) {
  InstanceLog log(/*window=*/16);
  log.Slot(1).has_batch = true;
  log.Slot(2).has_batch = true;
  log.Slot(2).committed = true;
  log.Slot(3).commit_seen = true;  // no batch: not "uncommitted work"
  EXPECT_EQ(log.UncommittedSlots(), 1);
  log.EraseUncommitted();
  EXPECT_EQ(log.Find(1), nullptr);
  ASSERT_NE(log.Find(2), nullptr);  // committed slots survive
  EXPECT_EQ(log.Find(3), nullptr);
  EXPECT_EQ(log.UncommittedSlots(), 0);
}

TEST(PrimaryPipelineTest, PacingAdmissionAndBatching) {
  PrimaryPipeline pipeline(/*batch_max=*/2, /*pipeline_max=*/2);
  Request r1 = TestRequest(1);
  EXPECT_TRUE(pipeline.Admit(r1));
  EXPECT_FALSE(pipeline.Admit(r1));  // duplicate timestamp
  pipeline.Enqueue(r1);
  for (uint64_t ts = 2; ts <= 5; ++ts) {
    Request r = TestRequest(ts);
    ASSERT_TRUE(pipeline.Admit(r));
    pipeline.Enqueue(std::move(r));
  }
  // 5 pending, batch_max 2: opening packs two requests per instance.
  EXPECT_TRUE(pipeline.CanOpen(/*uncommitted=*/0));
  auto [seq1, batch1] = pipeline.Open();
  EXPECT_EQ(seq1, 1u);
  EXPECT_EQ(batch1.size(), 2u);
  // Pacing: at pipeline_max uncommitted instances, no new one may open.
  EXPECT_FALSE(pipeline.CanOpen(/*uncommitted=*/2));
  EXPECT_TRUE(pipeline.CanOpen(/*uncommitted=*/1));
  auto [seq2, batch2] = pipeline.Open();
  EXPECT_EQ(seq2, 2u);
  EXPECT_EQ(batch2.size(), 2u);
  auto [seq3, batch3] = pipeline.Open();
  EXPECT_EQ(seq3, 3u);
  EXPECT_EQ(batch3.size(), 1u);
  EXPECT_FALSE(pipeline.HasPending());

  // View-change reseating.
  pipeline.AdvanceNextSeq(10);
  EXPECT_EQ(pipeline.next_seq(), 10u);
  pipeline.AdvanceNextSeq(4);  // never backwards
  EXPECT_EQ(pipeline.next_seq(), 10u);
  pipeline.OverrideNextSeq(6);
  EXPECT_EQ(pipeline.next_seq(), 6u);
  // ForgetAdmissions: the same timestamp is accepted afresh.
  pipeline.ForgetAdmissions();
  EXPECT_TRUE(pipeline.Admit(r1));
}

TEST(CheckpointCertTest, VerifyQuorumAndTampering) {
  KeyStore store(9);
  const uint64_t seq = 100;
  const Digest digest = Digest::Of(std::string("state"));
  CheckpointCert cert;
  for (PrincipalId r = 0; r < 3; ++r) {
    CheckpointMsg msg;
    msg.seq = seq;
    msg.state_digest = digest;
    msg.replica = r;
    msg.Sign(Signer(r, store));
    EXPECT_TRUE(msg.Verify(store));
    cert.Add(msg);
  }
  auto any = [](PrincipalId) { return true; };
  EXPECT_TRUE(cert.Verify(store, 3, any));
  EXPECT_FALSE(cert.Verify(store, 4, any));  // not enough signers
  // Authorization predicate filters signers.
  EXPECT_FALSE(cert.Verify(store, 3, [](PrincipalId r) { return r < 2; }));

  // A certificate with a mismatched digest fails.
  CheckpointCert bad = cert;
  CheckpointMsg liar;
  liar.seq = seq;
  liar.state_digest = Digest::Of(std::string("lie"));
  liar.replica = 5;
  liar.Sign(Signer(5, store));
  bad.Add(liar);
  EXPECT_FALSE(bad.Verify(store, 3, any));

  // Encode/decode round trip.
  Encoder enc;
  cert.EncodeTo(enc);
  Decoder dec(enc.bytes());
  auto decoded = CheckpointCert::DecodeFrom(dec);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->Verify(store, 3, any));
  EXPECT_EQ(decoded->seq(), seq);

  EXPECT_TRUE(CheckpointCert::Genesis().Verify(store, 99, any));
}

TEST(PreparedProofTest, VerifyAndReject) {
  KeyStore store(4);
  const PrincipalId primary = 2;
  Batch batch{{TestRequest(1)}};
  PreparedProof proof;
  proof.mode = 3;
  proof.view = 7;
  proof.seq = 21;
  proof.digest = batch.ComputeDigest();
  proof.batch = batch;
  proof.primary_sig = Signer(primary, store)
                          .Sign(ProposalHeader(kDomainPrePrepare, 3, 7, 21,
                                               proof.digest));
  for (PrincipalId voter : {3, 4, 5}) {
    proof.prepares.emplace_back(
        voter, Signer(voter, store).Sign(
                   VoteHeader(kDomainPrepare, 3, 7, 21, proof.digest, voter)));
  }
  auto any = [](PrincipalId) { return true; };
  EXPECT_TRUE(proof.Verify(store, primary, 3, any));
  EXPECT_FALSE(proof.Verify(store, primary, 4, any));
  EXPECT_FALSE(proof.Verify(store, /*wrong primary=*/1, 3, any));
  // A vote from an unauthorized replica invalidates the proof.
  EXPECT_FALSE(proof.Verify(store, primary, 3,
                            [](PrincipalId r) { return r != 4; }));

  // Batch/digest mismatch rejected.
  PreparedProof tampered = proof;
  tampered.batch = Batch::Noop();
  EXPECT_FALSE(tampered.Verify(store, primary, 3, any));

  // Round trip.
  Encoder enc;
  proof.EncodeTo(enc);
  Decoder dec(enc.bytes());
  auto decoded = PreparedProof::DecodeFrom(dec);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->Verify(store, primary, 3, any));
}

TEST(SigDomainTest, HeadersAreDomainSeparated) {
  Digest d = Digest::Of(std::string("v"));
  EXPECT_NE(ProposalHeader(kDomainPrePrepare, 1, 2, 3, d),
            ProposalHeader(kDomainCommit, 1, 2, 3, d));
  EXPECT_NE(ProposalHeader(kDomainPrePrepare, 1, 2, 3, d),
            ProposalHeader(kDomainPrePrepare, 2, 2, 3, d));  // mode differs
  EXPECT_NE(VoteHeader(kDomainPrepare, 1, 2, 3, d, 4),
            VoteHeader(kDomainPrepare, 1, 2, 3, d, 5));  // voter differs
}

TEST(ClusterConfigTest, SizesAndQuorums) {
  ClusterConfig cft;
  cft.kind = ProtocolKind::kCft;
  cft.f = 2;
  EXPECT_EQ(cft.n(), 5);
  EXPECT_EQ(cft.CommitQuorum(SeeMoReMode::kLion), 3);

  ClusterConfig bft;
  bft.kind = ProtocolKind::kBft;
  bft.f = 2;
  EXPECT_EQ(bft.n(), 7);
  EXPECT_EQ(bft.CommitQuorum(SeeMoReMode::kLion), 5);

  ClusterConfig seemore;
  seemore.kind = ProtocolKind::kSeeMoRe;
  seemore.s = 2;
  seemore.p = 4;
  seemore.c = 1;
  seemore.m = 1;
  EXPECT_EQ(seemore.n(), 6);
  EXPECT_EQ(seemore.CommitQuorum(SeeMoReMode::kLion), 4);   // 2m+c+1
  EXPECT_EQ(seemore.CommitQuorum(SeeMoReMode::kDog), 3);    // 2m+1
  EXPECT_EQ(seemore.CommitQuorum(SeeMoReMode::kPeacock), 3);
  EXPECT_TRUE(seemore.Validate().ok());
}

TEST(ClusterConfigTest, RoleAssignment) {
  ClusterConfig config;
  config.kind = ProtocolKind::kSeeMoRe;
  config.s = 2;
  config.p = 6;
  config.c = 1;
  config.m = 1;
  EXPECT_TRUE(config.IsTrusted(0));
  EXPECT_TRUE(config.IsTrusted(1));
  EXPECT_FALSE(config.IsTrusted(2));

  EXPECT_EQ(config.TrustedPrimary(0), 0);
  EXPECT_EQ(config.TrustedPrimary(1), 1);
  EXPECT_EQ(config.TrustedPrimary(2), 0);

  EXPECT_EQ(config.PeacockPrimary(0), 2);
  EXPECT_EQ(config.PeacockPrimary(5), 7);
  EXPECT_EQ(config.PeacockPrimary(6), 2);  // wraps around P

  // 3m+1 = 4 proxies; the window rotates with the view.
  auto proxies0 = config.ProxySet(0);
  EXPECT_EQ(proxies0, (std::vector<PrincipalId>{2, 3, 4, 5}));
  auto proxies5 = config.ProxySet(5);
  EXPECT_EQ(proxies5, (std::vector<PrincipalId>{7, 2, 3, 4}));
  for (PrincipalId r : proxies5) EXPECT_TRUE(config.IsProxy(r, 5));
  EXPECT_FALSE(config.IsProxy(5, 5));
  EXPECT_FALSE(config.IsProxy(0, 5));  // trusted nodes are never proxies
  // The Peacock primary is always a proxy (§5.3).
  for (uint64_t v = 0; v < 20; ++v) {
    EXPECT_TRUE(config.IsProxy(config.PeacockPrimary(v), v)) << "view " << v;
  }
}

TEST(ClusterConfigTest, ValidationRejectsBadTopologies) {
  ClusterConfig config;
  config.kind = ProtocolKind::kSeeMoRe;
  config.s = 1;
  config.c = 1;  // S must be >= c+1
  config.p = 4;
  config.m = 1;
  EXPECT_FALSE(config.Validate().ok());
  config.s = 2;
  config.p = 3;  // P must be >= 3m+1
  EXPECT_FALSE(config.Validate().ok());
  config.p = 4;
  EXPECT_TRUE(config.Validate().ok());
}

}  // namespace
}  // namespace seemore
