// Client reply-quorum policies (§5.1-§5.3 client rules), unit-tested
// directly: targets per mode, acceptance thresholds, view/mode tracking.

#include <gtest/gtest.h>

#include "harness/policies.h"

namespace seemore {
namespace {

ClusterConfig SeeMoReConfig() {
  ClusterConfig config;
  config.kind = ProtocolKind::kSeeMoRe;
  config.s = 2;
  config.p = 4;
  config.c = 1;
  config.m = 1;
  return config;
}

Reply MakeObservedReply(uint8_t mode, uint64_t view) {
  Reply reply;
  reply.mode = mode;
  reply.view = view;
  return reply;
}

TEST(CftPolicyTest, SingleReplySuffices) {
  ClusterConfig config;
  config.kind = ProtocolKind::kCft;
  config.f = 2;
  CftReplyPolicy policy(config);
  EXPECT_EQ(policy.InitialTargets().size(), 5u);  // receiving network 2f+1
  EXPECT_FALSE(policy.Accepted({}, false));
  EXPECT_TRUE(policy.Accepted({3}, false));
}

TEST(BftPolicyTest, NeedsFPlusOneMatching) {
  ClusterConfig config;
  config.kind = ProtocolKind::kBft;
  config.f = 2;
  BftReplyPolicy policy(config);
  EXPECT_EQ(policy.InitialTargets().size(), 7u);  // 3f+1
  EXPECT_FALSE(policy.Accepted({0, 1}, false));
  EXPECT_TRUE(policy.Accepted({0, 1, 2}, false));  // f+1 = 3
}

TEST(SUpRightPolicyTest, NeedsMPlusOneMatching) {
  ClusterConfig config;
  config.kind = ProtocolKind::kSUpRight;
  config.s = 2;
  config.p = 4;
  config.c = 1;
  config.m = 1;
  SUpRightReplyPolicy policy(config);
  EXPECT_FALSE(policy.Accepted({2}, false));
  EXPECT_TRUE(policy.Accepted({2, 3}, false));  // m+1 = 2
}

TEST(SeeMoRePolicyTest, LionAcceptsTrustedOrPublicQuorum) {
  SeeMoReReplyPolicy policy(SeeMoReConfig());
  // One trusted (private) reply completes the request.
  EXPECT_TRUE(policy.Accepted({0}, false));
  EXPECT_TRUE(policy.Accepted({1}, true));
  // A single public reply does not; m+1 matching publics do.
  EXPECT_FALSE(policy.Accepted({4}, false));
  EXPECT_TRUE(policy.Accepted({4, 5}, false));
}

TEST(SeeMoRePolicyTest, LionTargetsWholeReceivingNetwork) {
  SeeMoReReplyPolicy policy(SeeMoReConfig());
  EXPECT_EQ(policy.InitialTargets().size(), 6u);  // 3m+2c+1
}

TEST(SeeMoRePolicyTest, DogNeeds2MPlus1ThenMPlus1OnRetry) {
  ClusterConfig config = SeeMoReConfig();
  config.initial_mode = SeeMoReMode::kDog;
  SeeMoReReplyPolicy policy(config);
  // Initial targets: 3m+1 proxies + the trusted primary.
  EXPECT_EQ(policy.InitialTargets().size(), 5u);
  // Normal case: 2m+1 = 3 matching public replies.
  EXPECT_FALSE(policy.Accepted({2, 3}, false));
  EXPECT_TRUE(policy.Accepted({2, 3, 4}, false));
  // After a retransmission: m+1 = 2 suffice (§5.2).
  EXPECT_TRUE(policy.Accepted({2, 3}, true));
  // Trusted replies do not count toward Dog's proxy quorum.
  EXPECT_FALSE(policy.Accepted({0, 1, 2}, false));
}

TEST(SeeMoRePolicyTest, PeacockNeedsMPlus1) {
  ClusterConfig config = SeeMoReConfig();
  config.initial_mode = SeeMoReMode::kPeacock;
  SeeMoReReplyPolicy policy(config);
  EXPECT_EQ(policy.InitialTargets().size(), 4u);  // 3m+1 proxies
  EXPECT_FALSE(policy.Accepted({3}, false));
  EXPECT_TRUE(policy.Accepted({3, 4}, false));
}

TEST(SeeMoRePolicyTest, TracksModeAndViewFromReplies) {
  SeeMoReReplyPolicy policy(SeeMoReConfig());
  EXPECT_EQ(policy.mode(), SeeMoReMode::kLion);

  policy.Observe(MakeObservedReply(static_cast<uint8_t>(SeeMoReMode::kDog), 3));
  EXPECT_EQ(policy.mode(), SeeMoReMode::kDog);
  EXPECT_EQ(policy.view(), 3u);

  // Older views never roll the estimate back.
  policy.Observe(MakeObservedReply(static_cast<uint8_t>(SeeMoReMode::kLion), 1));
  EXPECT_EQ(policy.mode(), SeeMoReMode::kDog);
  EXPECT_EQ(policy.view(), 3u);

  // Garbage mode bytes are ignored even at higher views.
  policy.Observe(MakeObservedReply(99, 5));
  EXPECT_EQ(policy.mode(), SeeMoReMode::kDog);
  EXPECT_EQ(policy.view(), 5u);
}

TEST(SeeMoRePolicyTest, DogTargetsRotateWithView) {
  ClusterConfig config = SeeMoReConfig();
  config.p = 6;  // proxy window (4 of 6) actually rotates
  config.initial_mode = SeeMoReMode::kDog;
  SeeMoReReplyPolicy policy(config);
  auto before = policy.InitialTargets();
  policy.Observe(MakeObservedReply(static_cast<uint8_t>(SeeMoReMode::kDog), 3));
  auto after = policy.InitialTargets();
  EXPECT_NE(before, after);  // proxy set moved with the view
}

TEST(PolicyFactoryTest, BuildsMatchingPolicy) {
  ClusterConfig config = SeeMoReConfig();
  EXPECT_NE(MakeReplyPolicy(config), nullptr);
  config.kind = ProtocolKind::kCft;
  EXPECT_NE(MakeReplyPolicy(config), nullptr);
  config.kind = ProtocolKind::kBft;
  EXPECT_NE(MakeReplyPolicy(config), nullptr);
  config.kind = ProtocolKind::kSUpRight;
  EXPECT_NE(MakeReplyPolicy(config), nullptr);
}

}  // namespace
}  // namespace seemore
