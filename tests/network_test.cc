// Simulated network: delivery, latency profiles, drops, duplication,
// partitions, node detach, counters, sender authentication.

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "net/network.h"

namespace seemore {
namespace {

class Recorder : public MessageHandler {
 public:
  void OnMessage(PrincipalId from, Payload payload) override {
    messages.emplace_back(from, payload.ToBytes());
  }
  std::vector<std::pair<PrincipalId, Bytes>> messages;
};

NetworkConfig QuietConfig() {
  NetworkConfig config;
  config.intra_private = {Micros(100), 0};
  config.intra_public = {Micros(100), 0};
  config.cross_cloud = {Micros(200), 0};
  config.client_link = {Micros(300), 0};
  return config;
}

TEST(NetworkTest, DeliversWithZoneLatency) {
  Simulator sim;
  SimNetwork net(&sim, QuietConfig());
  Recorder a, b, c;
  net.AddNode(0, Zone::kPrivate, &a, nullptr);
  net.AddNode(1, Zone::kPrivate, &b, nullptr);
  net.AddNode(2, Zone::kPublic, &c, nullptr);

  net.Send(0, 1, Bytes{1});
  net.Send(0, 2, Bytes{2});
  sim.Run();
  ASSERT_EQ(b.messages.size(), 1u);
  ASSERT_EQ(c.messages.size(), 1u);
  EXPECT_EQ(b.messages[0].first, 0);  // true sender reported

  // Latency ordering: intra < cross-cloud (delivery times reflect it).
  Simulator sim2;
  SimNetwork net2(&sim2, QuietConfig());
  Recorder d, e, f;
  net2.AddNode(0, Zone::kPrivate, &d, nullptr);
  net2.AddNode(1, Zone::kPrivate, &e, nullptr);
  net2.AddNode(2, Zone::kPublic, &f, nullptr);
  SimTime intra_time = 0, cross_time = 0;
  net2.Send(0, 1, Bytes{1});
  sim2.Run();
  intra_time = sim2.now();
  net2.Send(0, 2, Bytes{2});
  sim2.Run();
  cross_time = sim2.now() - intra_time;
  EXPECT_LT(intra_time, cross_time);
}

TEST(NetworkTest, DropProbabilityOneDropsEverything) {
  Simulator sim;
  NetworkConfig config = QuietConfig();
  config.drop_probability = 1.0;
  SimNetwork net(&sim, config);
  Recorder a, b;
  net.AddNode(0, Zone::kPrivate, &a, nullptr);
  net.AddNode(1, Zone::kPrivate, &b, nullptr);
  for (int i = 0; i < 10; ++i) net.Send(0, 1, Bytes{1});
  sim.Run();
  EXPECT_TRUE(b.messages.empty());
  EXPECT_EQ(net.counters().dropped, 10u);
}

TEST(NetworkTest, DuplicationDeliversTwice) {
  Simulator sim;
  NetworkConfig config = QuietConfig();
  config.duplicate_probability = 1.0;
  SimNetwork net(&sim, config);
  Recorder a, b;
  net.AddNode(0, Zone::kPrivate, &a, nullptr);
  net.AddNode(1, Zone::kPrivate, &b, nullptr);
  net.Send(0, 1, Bytes{1});
  sim.Run();
  EXPECT_EQ(b.messages.size(), 2u);
}

TEST(NetworkTest, LinkCutBlocksBothDirections) {
  Simulator sim;
  SimNetwork net(&sim, QuietConfig());
  Recorder a, b;
  net.AddNode(0, Zone::kPrivate, &a, nullptr);
  net.AddNode(1, Zone::kPrivate, &b, nullptr);
  net.SetLinkUp(0, 1, false);
  net.Send(0, 1, Bytes{1});
  net.Send(1, 0, Bytes{2});
  sim.Run();
  EXPECT_TRUE(a.messages.empty());
  EXPECT_TRUE(b.messages.empty());
  net.SetLinkUp(0, 1, true);
  net.Send(0, 1, Bytes{3});
  sim.Run();
  EXPECT_EQ(b.messages.size(), 1u);
}

TEST(NetworkTest, NodeDownDropsInFlight) {
  Simulator sim;
  SimNetwork net(&sim, QuietConfig());
  Recorder a, b;
  net.AddNode(0, Zone::kPrivate, &a, nullptr);
  net.AddNode(1, Zone::kPrivate, &b, nullptr);
  net.Send(0, 1, Bytes{1});
  // Crash the receiver while the message is in flight.
  sim.Schedule(Micros(10), [&] { net.SetNodeUp(1, false); });
  sim.Run();
  EXPECT_TRUE(b.messages.empty());
  net.HealAll();
  net.Send(0, 1, Bytes{2});
  sim.Run();
  EXPECT_EQ(b.messages.size(), 1u);
}

TEST(NetworkTest, MulticastSkipsSelf) {
  Simulator sim;
  SimNetwork net(&sim, QuietConfig());
  Recorder handlers[3];
  for (int i = 0; i < 3; ++i) {
    net.AddNode(i, Zone::kPrivate, &handlers[i], nullptr);
  }
  net.Multicast(0, {0, 1, 2}, Bytes{7});
  sim.Run();
  EXPECT_TRUE(handlers[0].messages.empty());
  EXPECT_EQ(handlers[1].messages.size(), 1u);
  EXPECT_EQ(handlers[2].messages.size(), 1u);
}

TEST(NetworkTest, CountersSeparateClientTraffic) {
  Simulator sim;
  SimNetwork net(&sim, QuietConfig());
  Recorder a, b, c;
  net.AddNode(0, Zone::kPrivate, &a, nullptr);
  net.AddNode(1, Zone::kPrivate, &b, nullptr);
  net.AddNode(kClientIdBase, Zone::kClient, &c, nullptr);
  net.Send(0, 1, Bytes{1, 2});
  net.Send(kClientIdBase, 0, Bytes{3});
  net.Send(0, kClientIdBase, Bytes{4});
  sim.Run();
  EXPECT_EQ(net.counters().messages, 3u);
  EXPECT_EQ(net.counters().replica_to_replica_messages, 1u);
  EXPECT_EQ(net.counters().replica_to_replica_bytes, 2u);
  net.ResetCounters();
  EXPECT_EQ(net.counters().messages, 0u);
  EXPECT_EQ(net.counters().wire_bytes, 0u);
}

TEST(NetworkTest, CountersReportPayloadAndWireBytes) {
  // The transmission-time model charges payload + per-message framing; the
  // counters must expose both so bench JSON matches what was priced.
  Simulator sim;
  NetworkConfig config = QuietConfig();
  config.per_message_overhead_bytes = 64;
  SimNetwork net(&sim, config);
  Recorder a, b, c;
  net.AddNode(0, Zone::kPrivate, &a, nullptr);
  net.AddNode(1, Zone::kPrivate, &b, nullptr);
  net.AddNode(kClientIdBase, Zone::kClient, &c, nullptr);
  net.Send(0, 1, Bytes(100, 0x11));
  net.Send(0, kClientIdBase, Bytes(10, 0x22));
  sim.Run();
  EXPECT_EQ(net.counters().bytes, 110u);
  EXPECT_EQ(net.counters().wire_bytes, 110u + 2 * 64u);
  EXPECT_EQ(net.counters().replica_to_replica_bytes, 100u);
  EXPECT_EQ(net.counters().replica_to_replica_wire_bytes, 100u + 64u);
}

TEST(NetworkTest, BandwidthDelaysLargePayloads) {
  Simulator sim;
  NetworkConfig config = QuietConfig();
  config.bandwidth_bytes_per_sec = 1000 * 1000;  // 1 MB/s: very slow
  SimNetwork net(&sim, config);
  Recorder a, b;
  net.AddNode(0, Zone::kPrivate, &a, nullptr);
  net.AddNode(1, Zone::kPrivate, &b, nullptr);
  net.Send(0, 1, Bytes(100 * 1000, 0xaa));  // 100 KB -> 100 ms transmission
  sim.Run();
  EXPECT_GE(sim.now(), Millis(100));
}

TEST(NetworkTest, SenderCpuDelaysDeparture) {
  Simulator sim;
  SimNetwork net(&sim, QuietConfig());
  Recorder a, b;
  NodeCpu cpu(&sim);
  net.AddNode(0, Zone::kPrivate, &a, &cpu);
  net.AddNode(1, Zone::kPrivate, &b, nullptr);
  // The sender is busy until t=1ms; the message departs then.
  cpu.Submit([&] {
    cpu.Charge(Millis(1));
    net.Send(0, 1, Bytes{1});
  });
  sim.Run();
  EXPECT_GE(sim.now(), Millis(1) + Micros(100));
}

}  // namespace
}  // namespace seemore
