// PBFT baseline integration tests: normal case, Byzantine backups and
// primaries, view changes, checkpoints, state transfer.

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace seemore {
namespace {

using testing::BftOptions;
using testing::RunBurst;
using testing::SubmitAndWait;

TEST(PbftTest, CommitsSingleRequest) {
  Cluster cluster(BftOptions(/*f=*/1));
  SimClient* client = cluster.AddClient();
  auto result = SubmitAndWait(cluster, client, MakePut("k", "v"));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(ParseKvReply(*result).status, KvResult::kOk);
}

TEST(PbftTest, AllReplicasConverge) {
  Cluster cluster(BftOptions(1));
  SimClient* client = cluster.AddClient();
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(
        SubmitAndWait(cluster, client, MakePut("k" + std::to_string(i), "v"))
            .ok());
  }
  cluster.sim().RunUntil(cluster.sim().now() + Millis(50));
  EXPECT_TRUE(cluster.CheckAgreement().ok());
  EXPECT_TRUE(cluster.CheckConvergence({0, 1, 2, 3}).ok());
}

TEST(PbftTest, ConcurrentClientsAgree) {
  Cluster cluster(BftOptions(1));
  const uint64_t completed = RunBurst(cluster, 6, Millis(300));
  EXPECT_GT(completed, 50u);
  EXPECT_TRUE(cluster.CheckAgreement().ok());
}

TEST(PbftTest, ToleratesSilentByzantineBackup) {
  Cluster cluster(BftOptions(1));
  cluster.SetByzantine(3, kByzSilent);
  const uint64_t completed = RunBurst(cluster, 4, Millis(250));
  EXPECT_GT(completed, 30u);
  EXPECT_TRUE(cluster.CheckAgreement().ok());
}

TEST(PbftTest, ToleratesWrongVoteByzantineBackup) {
  Cluster cluster(BftOptions(1));
  cluster.SetByzantine(2, kByzWrongVotes);
  const uint64_t completed = RunBurst(cluster, 4, Millis(250));
  EXPECT_GT(completed, 30u);
  EXPECT_TRUE(cluster.CheckAgreement().ok());
}

TEST(PbftTest, ClientUnharmedByLyingReplica) {
  Cluster cluster(BftOptions(1));
  cluster.SetByzantine(3, kByzLieToClients);
  SimClient* client = cluster.AddClient();
  ASSERT_TRUE(SubmitAndWait(cluster, client, MakePut("key", "truth")).ok());
  auto get = SubmitAndWait(cluster, client, MakeGet("key"));
  ASSERT_TRUE(get.ok());
  // f+1 matching replies guarantee the value is the honest one.
  EXPECT_EQ(ParseKvReply(*get).value, "truth");
}

TEST(PbftTest, PrimaryCrashTriggersViewChange) {
  Cluster cluster(BftOptions(1));
  SimClient* client = cluster.AddClient();
  ASSERT_TRUE(SubmitAndWait(cluster, client, MakePut("a", "1")).ok());
  cluster.Crash(0);
  auto after = SubmitAndWait(cluster, client, MakePut("b", "2"));
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_GT(cluster.pbft(1)->view(), 0u);
  auto get = SubmitAndWait(cluster, client, MakeGet("a"));
  ASSERT_TRUE(get.ok());
  EXPECT_EQ(ParseKvReply(*get).value, "1");
  EXPECT_TRUE(cluster.CheckAgreement().ok());
}

TEST(PbftTest, EquivocatingPrimaryRecoveredByViewChange) {
  Cluster cluster(BftOptions(1));
  cluster.SetByzantine(0, kByzEquivocate);  // view-0 primary lies
  SimClient* client = cluster.AddClient();
  auto result = SubmitAndWait(cluster, client, MakePut("k", "v"), Seconds(10));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Progress required a view change away from the equivocator.
  EXPECT_GT(cluster.pbft(1)->view(), 0u);
  EXPECT_TRUE(cluster.CheckAgreement().ok());
}

TEST(PbftTest, CheckpointsAdvance) {
  ClusterOptions options = BftOptions(1);
  options.config.checkpoint_period = 8;
  Cluster cluster(options);
  RunBurst(cluster, 4, Millis(300));
  cluster.sim().RunUntil(cluster.sim().now() + Millis(50));
  int advanced = 0;
  for (int i = 0; i < cluster.n(); ++i) {
    if (cluster.pbft(i)->stable_checkpoint() > 0) ++advanced;
  }
  EXPECT_GE(advanced, 3);
  EXPECT_TRUE(cluster.CheckAgreement().ok());
}

TEST(PbftTest, CrashedReplicaStateTransfersOnRecovery) {
  ClusterOptions options = BftOptions(1);
  options.config.checkpoint_period = 8;
  Cluster cluster(options);
  cluster.Crash(3);
  RunBurst(cluster, 4, Millis(300));
  const uint64_t before = cluster.pbft(0)->last_executed();
  ASSERT_GT(before, 10u);
  cluster.Recover(3);
  RunBurst(cluster, 4, Millis(400));
  cluster.sim().RunUntil(cluster.sim().now() + Millis(100));
  EXPECT_GT(cluster.pbft(3)->last_executed(), before);
  EXPECT_TRUE(cluster.CheckAgreement().ok());
}

TEST(PbftTest, LargerClusterF2) {
  Cluster cluster(BftOptions(2));  // n = 7
  cluster.SetByzantine(5, kByzWrongVotes);
  cluster.Crash(6);  // second fault is a crash
  const uint64_t completed = RunBurst(cluster, 4, Millis(300));
  EXPECT_GT(completed, 30u);
  EXPECT_TRUE(cluster.CheckAgreement().ok());
}

}  // namespace
}  // namespace seemore
