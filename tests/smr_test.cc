// State machines (KV, ledger), request/reply wire types, execution engine.

#include <gtest/gtest.h>

#include "consensus/execution.h"
#include "smr/command.h"
#include "smr/kv_store.h"
#include "smr/ledger.h"

namespace seemore {
namespace {

TEST(KvStoreTest, PutGetDelete) {
  KvStateMachine kv;
  EXPECT_EQ(ParseKvReply(kv.Execute(MakePut("a", "1"))).status, KvResult::kOk);
  KvReply get = ParseKvReply(kv.Execute(MakeGet("a")));
  EXPECT_EQ(get.status, KvResult::kOk);
  EXPECT_EQ(get.value, "1");
  EXPECT_EQ(ParseKvReply(kv.Execute(MakeDelete("a"))).status, KvResult::kOk);
  EXPECT_EQ(ParseKvReply(kv.Execute(MakeGet("a"))).status, KvResult::kNotFound);
  EXPECT_EQ(ParseKvReply(kv.Execute(MakeDelete("a"))).status,
            KvResult::kNotFound);
}

TEST(KvStoreTest, CompareAndSwap) {
  KvStateMachine kv;
  kv.Execute(MakePut("x", "old"));
  KvReply mismatch = ParseKvReply(kv.Execute(MakeCas("x", "wrong", "new")));
  EXPECT_EQ(mismatch.status, KvResult::kMismatch);
  EXPECT_EQ(mismatch.value, "old");  // current value reported
  EXPECT_EQ(ParseKvReply(kv.Execute(MakeCas("x", "old", "new"))).status,
            KvResult::kOk);
  EXPECT_EQ(ParseKvReply(kv.Execute(MakeGet("x"))).value, "new");
  EXPECT_EQ(ParseKvReply(kv.Execute(MakeCas("nope", "a", "b"))).status,
            KvResult::kNotFound);
}

TEST(KvStoreTest, EchoSizes) {
  KvStateMachine kv;
  KvReply reply = ParseKvReply(kv.Execute(MakeEcho(4096, 1024)));
  EXPECT_EQ(reply.status, KvResult::kOk);
  EXPECT_EQ(reply.value.size(), 4096u);
  // Oversized echo rejected (Byzantine client defense).
  EXPECT_EQ(ParseKvReply(kv.Execute(MakeEcho(1u << 30, 0))).status,
            KvResult::kBadRequest);
}

TEST(KvStoreTest, MalformedOpIsRejectedNotFatal) {
  KvStateMachine kv;
  EXPECT_EQ(ParseKvReply(kv.Execute(Bytes{})).status, KvResult::kBadRequest);
  EXPECT_EQ(ParseKvReply(kv.Execute(Bytes{99, 1, 2})).status,
            KvResult::kBadRequest);
  EXPECT_EQ(ParseKvReply(kv.Execute(Bytes{1 /*PUT, truncated*/})).status,
            KvResult::kBadRequest);
}

TEST(KvStoreTest, SnapshotRestoreRoundTrip) {
  KvStateMachine kv;
  kv.Execute(MakePut("k1", "v1"));
  kv.Execute(MakePut("k2", "v2"));
  Bytes snapshot = kv.Snapshot();
  Digest digest = kv.StateDigest();

  KvStateMachine other;
  ASSERT_TRUE(other.Restore(snapshot).ok());
  EXPECT_EQ(other.StateDigest(), digest);
  EXPECT_EQ(other.ops_applied(), kv.ops_applied());
  EXPECT_EQ(ParseKvReply(other.Execute(MakeGet("k2"))).value, "v2");
}

TEST(KvStoreTest, RestoreRejectsCorruptSnapshot) {
  KvStateMachine kv;
  kv.Execute(MakePut("a", "b"));
  Bytes snapshot = kv.Snapshot();
  snapshot.resize(snapshot.size() / 2);
  KvStateMachine other;
  EXPECT_FALSE(other.Restore(snapshot).ok());
}

TEST(LedgerTest, AppendChainsHashes) {
  LedgerStateMachine ledger;
  LedgerReply r1 = ParseLedgerReply(ledger.Execute(MakeLedgerAppend("tx-1")));
  EXPECT_TRUE(r1.ok);
  EXPECT_EQ(r1.index, 0u);
  LedgerReply r2 = ParseLedgerReply(ledger.Execute(MakeLedgerAppend("tx-2")));
  EXPECT_EQ(r2.index, 1u);
  EXPECT_NE(r1.chain_head, r2.chain_head);

  LedgerReply head = ParseLedgerReply(ledger.Execute(MakeLedgerHead()));
  EXPECT_EQ(head.index, 2u);  // length
  EXPECT_EQ(head.chain_head, r2.chain_head);

  LedgerReply read = ParseLedgerReply(ledger.Execute(MakeLedgerReadAt(0)));
  EXPECT_TRUE(read.ok);
  EXPECT_EQ(read.data, "tx-1");
  EXPECT_FALSE(ParseLedgerReply(ledger.Execute(MakeLedgerReadAt(9))).ok);
}

TEST(LedgerTest, DeterministicChain) {
  LedgerStateMachine a, b;
  for (const char* tx : {"t1", "t2", "t3"}) {
    a.Execute(MakeLedgerAppend(tx));
    b.Execute(MakeLedgerAppend(tx));
  }
  EXPECT_EQ(a.chain_head(), b.chain_head());
  EXPECT_EQ(a.StateDigest(), b.StateDigest());
}

TEST(LedgerTest, SnapshotRestore) {
  LedgerStateMachine ledger;
  ledger.Execute(MakeLedgerAppend("entry"));
  Bytes snapshot = ledger.Snapshot();
  LedgerStateMachine other;
  ASSERT_TRUE(other.Restore(snapshot).ok());
  EXPECT_EQ(other.chain_head(), ledger.chain_head());
  EXPECT_EQ(other.length(), 1u);
}

TEST(RequestTest, SignEncodeDecodeVerify) {
  KeyStore store(3);
  Signer client_signer(kClientIdBase, store);
  Request request;
  request.client = kClientIdBase;
  request.timestamp = 17;
  request.op = MakePut("k", "v");
  request.Sign(client_signer);
  EXPECT_TRUE(request.VerifySignature(store));

  Bytes message = request.ToMessage();
  Decoder dec(message);
  EXPECT_EQ(dec.GetU8(), kMsgRequest);
  auto decoded = Request::DecodeFrom(dec);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(dec.AtEnd());
  EXPECT_EQ(*decoded, request);
  EXPECT_TRUE(decoded->VerifySignature(store));
  EXPECT_EQ(decoded->ComputeDigest(), request.ComputeDigest());

  // Tampering breaks the signature.
  decoded->timestamp = 18;
  EXPECT_FALSE(decoded->VerifySignature(store));
}

TEST(ReplyTest, SignEncodeDecodeVerify) {
  KeyStore store(3);
  Signer replica_signer(2, store);
  Reply reply;
  reply.mode = 1;
  reply.view = 4;
  reply.timestamp = 9;
  reply.replica = 2;
  reply.result = {1, 2, 3};
  reply.Sign(replica_signer);

  Bytes message = reply.ToMessage();
  Decoder dec(message);
  EXPECT_EQ(dec.GetU8(), kMsgReply);
  auto decoded = Reply::DecodeFrom(dec);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->VerifySignature(store));
  decoded->result[0] ^= 1;
  EXPECT_FALSE(decoded->VerifySignature(store));
}

Request MakeTestRequest(PrincipalId client, uint64_t ts) {
  Request r;
  r.client = client;
  r.timestamp = ts;
  r.op = MakeNoop();
  return r;
}

TEST(ExecutionEngineTest, InOrderExecution) {
  ExecutionEngine engine(std::make_unique<KvStateMachine>());
  Batch b1{{MakeTestRequest(kClientIdBase, 1)}};
  Batch b2{{MakeTestRequest(kClientIdBase, 2)}};
  EXPECT_EQ(engine.Commit(1, b1).size(), 1u);
  EXPECT_EQ(engine.last_executed(), 1u);
  EXPECT_EQ(engine.Commit(2, b2).size(), 1u);
  EXPECT_EQ(engine.last_executed(), 2u);
}

TEST(ExecutionEngineTest, BuffersGaps) {
  ExecutionEngine engine(std::make_unique<KvStateMachine>());
  Batch b1{{MakeTestRequest(kClientIdBase, 1)}};
  Batch b3{{MakeTestRequest(kClientIdBase, 3)}};
  EXPECT_TRUE(engine.Commit(3, b3).empty());  // gap: waits for 1, 2
  EXPECT_EQ(engine.last_executed(), 0u);
  EXPECT_TRUE(engine.HasCommitted(3));
  Batch b2{{MakeTestRequest(kClientIdBase, 2)}};
  EXPECT_EQ(engine.Commit(1, b1).size(), 1u);
  // Committing 2 releases both 2 and 3.
  EXPECT_EQ(engine.Commit(2, b2).size(), 2u);
  EXPECT_EQ(engine.last_executed(), 3u);
}

TEST(ExecutionEngineTest, ExactlyOnceDeduplication) {
  ExecutionEngine engine(std::make_unique<KvStateMachine>());
  Request put = MakeTestRequest(kClientIdBase, 5);
  put.op = MakePut("a", "1");
  auto first = engine.Commit(1, Batch{{put}});
  ASSERT_EQ(first.size(), 1u);
  EXPECT_FALSE(first[0].duplicate);

  // The same (client, timestamp) committed again at a later seq must NOT
  // re-execute, and the cached reply is returned.
  auto second = engine.Commit(2, Batch{{put}});
  ASSERT_EQ(second.size(), 1u);
  EXPECT_TRUE(second[0].duplicate);
  EXPECT_EQ(second[0].result, first[0].result);
  EXPECT_TRUE(engine.SeenTimestamp(kClientIdBase, 5));
  EXPECT_TRUE(engine.CachedReply(kClientIdBase, 5).has_value());
  EXPECT_FALSE(engine.CachedReply(kClientIdBase, 4).has_value());
}

TEST(ExecutionEngineTest, DuplicateSeqIgnored) {
  ExecutionEngine engine(std::make_unique<KvStateMachine>());
  Batch b{{MakeTestRequest(kClientIdBase, 1)}};
  EXPECT_EQ(engine.Commit(1, b).size(), 1u);
  EXPECT_TRUE(engine.Commit(1, b).empty());
}

TEST(ExecutionEngineTest, SnapshotRestoreCarriesReplyCache) {
  ExecutionEngine engine(std::make_unique<KvStateMachine>());
  Request put = MakeTestRequest(kClientIdBase, 1);
  put.op = MakePut("k", "v");
  engine.Commit(1, Batch{{put}});
  Bytes snapshot = engine.Snapshot();
  Digest digest = engine.StateDigest();

  ExecutionEngine other(std::make_unique<KvStateMachine>());
  ASSERT_TRUE(other.Restore(snapshot, 1).ok());
  EXPECT_EQ(other.last_executed(), 1u);
  EXPECT_EQ(other.StateDigest(), digest);
  EXPECT_TRUE(other.SeenTimestamp(kClientIdBase, 1));
  // Restore validates the claimed sequence number.
  ExecutionEngine third(std::make_unique<KvStateMachine>());
  EXPECT_FALSE(third.Restore(snapshot, 2).ok());
}

TEST(ExecutionEngineTest, ExecutedDigestsTrackHistory) {
  ExecutionEngine engine(std::make_unique<KvStateMachine>());
  Batch b1{{MakeTestRequest(kClientIdBase, 1)}};
  engine.Commit(1, b1);
  ASSERT_EQ(engine.executed_digests().size(), 1u);
  EXPECT_EQ(engine.executed_digests().at(1), b1.ComputeDigest());
}

TEST(ExecutionEngineTest, ReplyRetentionBoundsCacheSize) {
  // Property: with retention R, after any committed prefix the cache holds
  // only clients whose latest request executed within the last R seqs — so
  // its size never exceeds the number of clients active in that window,
  // no matter how many one-shot clients pass through.
  constexpr uint64_t kRetention = 8;
  ExecutionEngine engine(std::make_unique<KvStateMachine>());
  engine.SetReplyRetention(kRetention);

  // One returning client plus a fresh one-shot client per seq. Unbounded
  // cache growth would retain every one-shot client forever.
  for (uint64_t seq = 1; seq <= 200; ++seq) {
    Batch batch{{MakeTestRequest(kClientIdBase, seq),
                 MakeTestRequest(kClientIdBase + static_cast<PrincipalId>(seq),
                                 1)}};
    ASSERT_EQ(engine.Commit(seq, batch).size(), 2u);
    // Active-client bound: the returning client + the one-shots whose seq
    // lies in the retention window [last_executed - R, last_executed].
    EXPECT_LE(engine.reply_cache_size(), kRetention + 2);
  }

  // The returning client's entry survives (it stays within the window)...
  EXPECT_TRUE(engine.SeenTimestamp(kClientIdBase, 200));
  EXPECT_TRUE(engine.CachedReply(kClientIdBase, 200).has_value());
  // ...while a long-idle one-shot client has been evicted: its reply is
  // gone and a retransmission would re-execute (the documented tradeoff).
  EXPECT_FALSE(engine.SeenTimestamp(kClientIdBase + 1, 1));

  // Eviction only trims entries older than the window, never the frontier:
  // all clients from the last R seqs are still deduplicable.
  for (uint64_t seq = 200 - kRetention + 1; seq <= 200; ++seq) {
    EXPECT_TRUE(
        engine.SeenTimestamp(kClientIdBase + static_cast<PrincipalId>(seq), 1));
  }
}

TEST(ExecutionEngineTest, ReplyRetentionSurvivesSnapshotRestore) {
  // With retention enabled, snapshots carry each cache entry's last
  // execution seq, so a restored engine evicts on exactly the donor's
  // schedule. If Restore guessed last_seq instead (say, re-stamping every
  // entry to the snapshot seq), the restored cache would outlive the
  // donor's and every later state digest would diverge.
  constexpr uint64_t kRetention = 4;
  constexpr PrincipalId kIdle = kClientIdBase;
  constexpr PrincipalId kActive = kClientIdBase + 1;

  ExecutionEngine donor(std::make_unique<KvStateMachine>());
  donor.SetReplyRetention(kRetention);
  // The idle client executes only at seq 1; the active client every seq.
  donor.Commit(1, Batch{{MakeTestRequest(kIdle, 1), MakeTestRequest(kActive, 1)}});
  for (uint64_t seq = 2; seq <= 3; ++seq) {
    donor.Commit(seq, Batch{{MakeTestRequest(kActive, seq)}});
  }
  ASSERT_EQ(donor.reply_cache_size(), 2u);

  ExecutionEngine restored(std::make_unique<KvStateMachine>());
  restored.SetReplyRetention(kRetention);
  ASSERT_TRUE(restored.Restore(donor.Snapshot(), 3).ok());
  EXPECT_EQ(restored.reply_cache_size(), 2u);
  EXPECT_EQ(restored.StateDigest(), donor.StateDigest());

  // Drive both engines through the same committed suffix. The idle client's
  // entry (last_seq = 1) must fall out of both caches at the same commit —
  // seq 6 is the first with 1 < last_executed - kRetention — and the state
  // digests must stay pairwise identical the whole way.
  for (uint64_t seq = 4; seq <= 8; ++seq) {
    Batch batch{{MakeTestRequest(kActive, seq)}};
    donor.Commit(seq, batch);
    restored.Commit(seq, batch);
    EXPECT_EQ(restored.StateDigest(), donor.StateDigest()) << "seq " << seq;
    EXPECT_EQ(restored.reply_cache_size(), donor.reply_cache_size())
        << "seq " << seq;
  }
  EXPECT_FALSE(donor.SeenTimestamp(kIdle, 1));
  EXPECT_FALSE(restored.SeenTimestamp(kIdle, 1));
  EXPECT_TRUE(restored.SeenTimestamp(kActive, 8));
}

TEST(ExecutionEngineTest, RetentionOffSnapshotKeepsHistoricalLayout) {
  // reply_cache_retention = 0 (the default) must leave snapshot bytes
  // exactly as they were before the knob existed: the per-entry last_seq
  // field is only serialized when retention is on. Guards the "wire bytes
  // unchanged in default config" invariant.
  Request put = MakeTestRequest(kClientIdBase, 1);
  put.op = MakePut("k", "v");

  ExecutionEngine plain(std::make_unique<KvStateMachine>());
  plain.Commit(1, Batch{{put}});

  ExecutionEngine bounded(std::make_unique<KvStateMachine>());
  bounded.SetReplyRetention(16);
  bounded.Commit(1, Batch{{put}});

  Bytes plain_snap = plain.Snapshot();
  Bytes bounded_snap = bounded.Snapshot();
  // One cache entry -> exactly one extra u64 when retention is enabled.
  EXPECT_EQ(bounded_snap.size(), plain_snap.size() + 8);
  // And the retention-on bytes are a faithful superset: restoring them into
  // a retention-on engine reproduces the same logical state.
  ExecutionEngine check(std::make_unique<KvStateMachine>());
  check.SetReplyRetention(16);
  ASSERT_TRUE(check.Restore(bounded_snap, 1).ok());
  EXPECT_EQ(check.StateDigest(), bounded.StateDigest());
}

}  // namespace
}  // namespace seemore
