// Wire-path buffer lifecycle: encode-once FrameBuffers, the iovec write
// queue's partial-write cursor, and the pooled zero-copy read path. These
// are the invariants the tcp transport's throughput rests on — one CRC
// pass per multicast, one sendmsg per flush, one copy only when a frame
// straddles a read block.

#include <gtest/gtest.h>
#include <sys/uio.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "rt/frame.h"
#include "rt/write_queue.h"

namespace seemore {
namespace rt {
namespace {

Bytes MakeBody(size_t len, uint8_t seed = 0x5a) {
  Bytes body(len);
  uint32_t x = seed + 1;
  for (size_t i = 0; i < len; ++i) {
    x = x * 1664525u + 1013904223u;
    body[i] = static_cast<uint8_t>(x >> 24);
  }
  return body;
}

TEST(FrameBufferTest, WrapAliasesTheBodyAndMatchesEncodeFrame) {
  const Bytes body = MakeBody(64);
  Payload payload(body);
  std::shared_ptr<const FrameBuffer> frame = FrameBuffer::Wrap(payload);

  // Zero-copy: the frame's body IS the sender's payload buffer.
  EXPECT_EQ(frame->body().data(), payload.data());
  EXPECT_TRUE(frame->body().SharesBufferWith(payload));
  EXPECT_EQ(frame->size(), kFrameHeaderBytes + body.size());

  // header + body is byte-identical to the contiguous encoding, so the
  // receive side cannot tell which send path produced a frame.
  const Bytes expected = EncodeFrame(body);
  Bytes wire(frame->header(), frame->header() + kFrameHeaderBytes);
  wire.insert(wire.end(), frame->body().data(),
              frame->body().data() + frame->body().size());
  EXPECT_EQ(wire, expected);
}

/// Copy `n` bytes out of the queue's current iovec chain (bounded by what
/// the chain exposes), then advance the cursor — one simulated syscall
/// that the kernel cut short at `n` bytes. Returns completed frame count.
size_t TakeBytes(WriteQueue* queue, size_t n, Bytes* out) {
  iovec iov[16];
  size_t total = 0;
  const size_t niov = queue->BuildIovecs(iov, 16, &total);
  EXPECT_GE(total, n);
  size_t remaining = n;
  for (size_t i = 0; i < niov && remaining > 0; ++i) {
    const uint8_t* base = static_cast<const uint8_t*>(iov[i].iov_base);
    const size_t take = std::min(remaining, iov[i].iov_len);
    out->insert(out->end(), base, base + take);
    remaining -= take;
  }
  return queue->Advance(n);
}

// The satellite requirement: a partial write at EVERY byte boundary of a
// multi-frame chain resumes exactly where the kernel stopped — including
// boundaries inside a header, inside a body, and on frame edges.
TEST(WriteQueueTest, PartialWriteAtEverySplitBoundary) {
  const std::vector<Bytes> bodies = {MakeBody(5, 1), MakeBody(0, 2),
                                     MakeBody(37, 3), MakeBody(13, 4)};
  Bytes expected;
  for (const Bytes& body : bodies) {
    const Bytes frame = EncodeFrame(body);
    expected.insert(expected.end(), frame.begin(), frame.end());
  }

  for (size_t split = 0; split <= expected.size(); ++split) {
    WriteQueue queue(1u << 20);
    for (const Bytes& body : bodies) {
      ASSERT_TRUE(queue.Enqueue(FrameBuffer::Wrap(Payload(body))));
    }
    ASSERT_EQ(queue.queued_bytes(), expected.size());

    Bytes sent;
    size_t completed = TakeBytes(&queue, split, &sent);
    completed += TakeBytes(&queue, expected.size() - split, &sent);
    EXPECT_EQ(sent, expected) << "split at " << split;
    EXPECT_EQ(completed, bodies.size());
    EXPECT_TRUE(queue.empty());
    EXPECT_EQ(queue.queued_bytes(), 0u);
  }
}

TEST(WriteQueueTest, IovecChainIsTwoEntriesPerFrameOnePerEmptyBody) {
  WriteQueue queue(1u << 20);
  ASSERT_TRUE(queue.Enqueue(FrameBuffer::Wrap(Payload(MakeBody(9)))));
  ASSERT_TRUE(queue.Enqueue(FrameBuffer::Wrap(Payload(MakeBody(0)))));
  ASSERT_TRUE(queue.Enqueue(FrameBuffer::Wrap(Payload(MakeBody(3)))));
  iovec iov[16];
  size_t total = 0;
  EXPECT_EQ(queue.BuildIovecs(iov, 16, &total), 5u);
  EXPECT_EQ(total, queue.queued_bytes());
  // A tiny iovec budget truncates the chain without corrupting it.
  EXPECT_EQ(queue.BuildIovecs(iov, 3, &total), 3u);
  EXPECT_EQ(total, (kFrameHeaderBytes + 9) + kFrameHeaderBytes);
}

// Backpressure accounting with shared frames: a multicast frame on five
// queues charges each queue its full wire size (the bytes that connection
// owes the kernel), not size/5 and not zero for "already counted".
TEST(WriteQueueTest, SharedFrameChargesEachQueueItsFullWireSize) {
  const Bytes body = MakeBody(100);
  std::shared_ptr<const FrameBuffer> frame = FrameBuffer::Wrap(Payload(body));
  WriteQueue a(1000), b(1000);
  ASSERT_TRUE(a.Enqueue(frame));
  ASSERT_TRUE(b.Enqueue(frame));
  EXPECT_EQ(a.queued_bytes(), frame->size());
  EXPECT_EQ(b.queued_bytes(), frame->size());

  // Both queues expose the SAME bytes — fan-out shares, never copies.
  iovec iov_a[4], iov_b[4];
  size_t total_a = 0, total_b = 0;
  ASSERT_EQ(a.BuildIovecs(iov_a, 4, &total_a), 2u);
  ASSERT_EQ(b.BuildIovecs(iov_b, 4, &total_b), 2u);
  EXPECT_EQ(iov_a[0].iov_base, iov_b[0].iov_base);
  EXPECT_EQ(iov_a[1].iov_base, iov_b[1].iov_base);

  // The cap is per queue: room for one copy of the frame but not two.
  WriteQueue small(frame->size() * 2 - 1);
  EXPECT_TRUE(small.Enqueue(frame));
  EXPECT_FALSE(small.Enqueue(frame));
  EXPECT_EQ(small.queued_bytes(), frame->size());

  // One queue draining must not disturb the other's accounting.
  Bytes sent;
  EXPECT_EQ(TakeBytes(&a, frame->size(), &sent), 1u);
  EXPECT_EQ(a.queued_bytes(), 0u);
  EXPECT_EQ(b.queued_bytes(), frame->size());
}

TEST(BlockPoolTest, ReusesABlockOnlyAfterEveryViewDies) {
  BlockPool pool(/*block_bytes=*/32, /*max_cached=*/4);
  std::shared_ptr<Bytes> block = pool.Acquire();
  EXPECT_EQ(pool.blocks_allocated(), 1u);
  const Bytes* raw = block.get();

  Payload view = Payload::View(block, 0, 8);
  pool.Recycle(std::move(block));

  // The view still aliases the block: Acquire must not hand it out.
  std::shared_ptr<Bytes> fresh = pool.Acquire();
  EXPECT_NE(fresh.get(), raw);
  EXPECT_EQ(pool.blocks_allocated(), 2u);
  EXPECT_EQ(pool.blocks_reused(), 0u);

  view = Payload();  // last view dies
  std::shared_ptr<Bytes> reused = pool.Acquire();
  EXPECT_EQ(reused.get(), raw);
  EXPECT_EQ(pool.blocks_reused(), 1u);
}

// The pooled read path: frames that fit a block come out as zero-copy
// views; a frame straddling the block boundary is reassembled by copy —
// and the stats ledger tells them apart honestly.
TEST(PooledReaderTest, StraddlingFrameIsCopiedInBlockFramesAliased) {
  BlockPool pool(/*block_bytes=*/64, /*max_cached=*/4);
  FrameReadStats stats;
  FrameReader reader(kMaxFrameBytes, &pool, &stats);

  const Bytes a = MakeBody(20, 1);  // 28 wire bytes: fits block 1
  const Bytes b = MakeBody(60, 2);  // 68 wire bytes: straddles 1 -> 2
  const Bytes c = MakeBody(10, 3);  // 18 wire bytes: fits block 2
  Bytes stream;
  for (const Bytes* body : {&a, &b, &c}) {
    const Bytes frame = EncodeFrame(*body);
    stream.insert(stream.end(), frame.begin(), frame.end());
  }
  ASSERT_TRUE(reader.Feed(stream.data(), stream.size()).ok());

  Payload out_a, out_b, out_c;
  ASSERT_TRUE(reader.Next(&out_a));
  ASSERT_TRUE(reader.Next(&out_b));
  ASSERT_TRUE(reader.Next(&out_c));
  Payload none;
  EXPECT_FALSE(reader.Next(&none));
  EXPECT_EQ(out_a.ToBytes(), a);
  EXPECT_EQ(out_b.ToBytes(), b);
  EXPECT_EQ(out_c.ToBytes(), c);

  EXPECT_EQ(stats.frames_aliased, 2u);
  EXPECT_EQ(stats.frames_copied, 1u);  // only the straddler
  EXPECT_EQ(stats.bytes_aliased, a.size() + c.size());
  EXPECT_EQ(stats.bytes_copied, b.size());
  EXPECT_EQ(reader.buffered(), 0u);
}

// An aliased frame must stay valid and immutable-to-others even after the
// reader has rolled past its block and the block went back to the pool.
TEST(PooledReaderTest, ViewsOutliveTheReadersProgress) {
  BlockPool pool(/*block_bytes=*/32, /*max_cached=*/4);
  FrameReadStats stats;
  FrameReader reader(kMaxFrameBytes, &pool, &stats);

  const Bytes first = MakeBody(16, 7);  // 24 wire bytes: fits block 1
  std::vector<Bytes> rest;
  Bytes stream = EncodeFrame(first);
  for (int i = 0; i < 8; ++i) {
    rest.push_back(MakeBody(16, static_cast<uint8_t>(10 + i)));
    const Bytes frame = EncodeFrame(rest.back());
    stream.insert(stream.end(), frame.begin(), frame.end());
  }
  ASSERT_TRUE(reader.Feed(stream.data(), stream.size()).ok());

  Payload held;
  ASSERT_TRUE(reader.Next(&held));  // keep the first frame's view alive
  Payload out;
  size_t drained = 0;
  while (reader.Next(&out)) {
    EXPECT_EQ(out.ToBytes(), rest[drained]);
    ++drained;
  }
  EXPECT_EQ(drained, rest.size());
  // The held view still reads the original bytes: its block was never
  // reissued while the view lived.
  EXPECT_EQ(held.ToBytes(), first);
}

}  // namespace
}  // namespace rt
}  // namespace seemore
