// Adversarial input: replicas must survive arbitrary bytes from clients and
// peers without crashing, leaking resources, or corrupting agreement. This
// drives raw messages straight through the network layer, bypassing the
// well-behaved client library.

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace seemore {
namespace {

using testing::SeeMoReOptions;
using testing::SubmitAndWait;

/// A "client" that can send arbitrary bytes and ignores replies.
class RawSender : public MessageHandler {
 public:
  RawSender(Cluster& cluster, PrincipalId id) : cluster_(cluster), id_(id) {
    cluster.net().AddNode(id, Zone::kClient, this, nullptr);
  }
  void OnMessage(PrincipalId, Payload) override {}
  void Blast(const Bytes& bytes) {
    for (PrincipalId r = 0; r < cluster_.n(); ++r) {
      cluster_.net().Send(id_, r, bytes);
    }
  }

 private:
  Cluster& cluster_;
  PrincipalId id_;
};

class AdversarialInputTest : public ::testing::Test {
 protected:
  void RunGarbageCampaign(Cluster& cluster) {
    RawSender attacker(cluster, kClientIdBase + 999);
    Rng rng(0xbad5eed);
    // 1. Pure garbage of many lengths.
    for (int round = 0; round < 50; ++round) {
      Bytes garbage(rng.NextBounded(300), 0);
      for (auto& b : garbage) b = static_cast<uint8_t>(rng.NextU64());
      attacker.Blast(garbage);
    }
    // 2. Valid tags with truncated bodies (every protocol tag).
    for (uint8_t tag = 1; tag < 25; ++tag) {
      for (size_t len : {0u, 1u, 5u, 40u}) {
        Encoder enc;
        enc.PutU8(tag);
        for (size_t i = 0; i < len; ++i) {
          enc.PutU8(static_cast<uint8_t>(rng.NextU64()));
        }
        attacker.Blast(enc.bytes());
      }
    }
    // 3. A REQUEST with a forged signature (must be dropped by verifiers).
    Request forged;
    forged.client = kClientIdBase;  // claims to be the honest client!
    forged.timestamp = 1u << 20;
    forged.op = MakePut("stolen", "key");
    // signature left zeroed: verification must fail
    attacker.Blast(forged.ToMessage());
    // 4. An absurd batch count inside a prepare-shaped message.
    Encoder enc;
    enc.PutU8(10);  // kPrepare
    enc.PutU8(1);   // mode
    enc.PutU64(0);
    enc.PutU64(1);
    for (int i = 0; i < 32; ++i) enc.PutU8(0);  // digest
    for (int i = 0; i < 32; ++i) enc.PutU8(0);  // signature
    enc.PutVarint(1u << 30);                    // "batch length"
    attacker.Blast(enc.bytes());
  }
};

TEST_F(AdversarialInputTest, SeeMoReLionSurvivesGarbage) {
  Cluster cluster(SeeMoReOptions(SeeMoReMode::kLion, 1, 1));
  SimClient* client = cluster.AddClient();
  RunGarbageCampaign(cluster);
  auto result = SubmitAndWait(cluster, client, MakePut("k", "v"), Seconds(10));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // The forged request for key "stolen" must never have executed.
  auto get = SubmitAndWait(cluster, client, MakeGet("stolen"));
  ASSERT_TRUE(get.ok());
  EXPECT_EQ(ParseKvReply(*get).status, KvResult::kNotFound);
  EXPECT_TRUE(cluster.CheckAgreement().ok());
}

TEST_F(AdversarialInputTest, SeeMoRePeacockSurvivesGarbage) {
  Cluster cluster(SeeMoReOptions(SeeMoReMode::kPeacock, 1, 1));
  SimClient* client = cluster.AddClient();
  RunGarbageCampaign(cluster);
  auto result = SubmitAndWait(cluster, client, MakePut("k", "v"), Seconds(10));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(cluster.CheckAgreement().ok());
}

TEST_F(AdversarialInputTest, PbftSurvivesGarbage) {
  Cluster cluster(testing::BftOptions(1));
  SimClient* client = cluster.AddClient();
  RunGarbageCampaign(cluster);
  auto result = SubmitAndWait(cluster, client, MakePut("k", "v"), Seconds(10));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(cluster.CheckAgreement().ok());
}

TEST_F(AdversarialInputTest, PaxosSurvivesGarbage) {
  Cluster cluster(testing::CftOptions(1));
  SimClient* client = cluster.AddClient();
  RunGarbageCampaign(cluster);
  auto result = SubmitAndWait(cluster, client, MakePut("k", "v"), Seconds(10));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(cluster.CheckAgreement().ok());
}

TEST_F(AdversarialInputTest, MalformedOpsExecuteSafely) {
  // A *valid, signed* request whose op payload is garbage: the state
  // machine must return kBadRequest deterministically on every replica.
  Cluster cluster(SeeMoReOptions(SeeMoReMode::kLion, 1, 1));
  SimClient* client = cluster.AddClient();
  auto result =
      SubmitAndWait(cluster, client, Bytes{0xff, 0x00, 0x13, 0x37});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(ParseKvReply(*result).status, KvResult::kBadRequest);
  cluster.sim().RunUntil(cluster.sim().now() + Millis(50));
  EXPECT_TRUE(cluster.CheckAgreement().ok());
}

// ---------------------------------------------------------------------------
// Equivocating votes: two conflicting signed votes for the same slot/view
// from one replica must be detected exactly once by the slot's QuorumTracker,
// counted in ReplicaStats, and never counted toward a quorum for either
// value. Covered for SeeMoRe (Dog accepts), PBFT (prepares) and Paxos (ACKs).
// ---------------------------------------------------------------------------

TEST_F(AdversarialInputTest, SeeMoReDogEquivocatingAcceptsDetectedOnce) {
  Cluster cluster(SeeMoReOptions(SeeMoReMode::kDog, 1, 1));
  SimClient* client = cluster.AddClient();

  // Proxy 5 equivocates on an in-window, not-yet-proposed slot: two validly
  // signed accepts for conflicting digests, the pair delivered twice.
  const PrincipalId byz = 5;
  ASSERT_TRUE(cluster.config().IsProxy(byz, 0));
  Signer byz_signer(byz, cluster.keystore());
  auto make_accept = [&](const std::string& value) {
    SmAcceptSignedMsg accept;
    accept.mode = static_cast<uint8_t>(SeeMoReMode::kDog);
    accept.view = 0;
    accept.seq = 7;
    accept.digest = Digest::Of(value);
    accept.voter = byz;
    accept.sig = byz_signer.Sign(accept.Header(SmAcceptSignedMsg::kDomain));
    return accept.ToMessage();
  };
  const PrincipalId honest_proxy = 2;
  for (int round = 0; round < 2; ++round) {
    cluster.net().Send(byz, honest_proxy, make_accept("value-a"));
    cluster.net().Send(byz, honest_proxy, make_accept("value-b"));
  }
  cluster.sim().RunUntil(Millis(5));
  EXPECT_EQ(cluster.replica(honest_proxy)->stats().equivocations_detected, 1u);

  // The cluster still makes progress and agrees.
  auto result = SubmitAndWait(cluster, client, MakePut("k", "v"), Seconds(10));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(cluster.CheckAgreement().ok());
}

TEST_F(AdversarialInputTest, PbftEquivocatingPreparesDetectedOnce) {
  Cluster cluster(testing::BftOptions(1));
  SimClient* client = cluster.AddClient();

  const PrincipalId byz = 3;
  Signer byz_signer(byz, cluster.keystore());
  auto make_prepare = [&](const std::string& value) {
    PbftPrepareMsg prepare;
    prepare.view = 0;
    prepare.seq = 7;
    prepare.digest = Digest::Of(value);
    prepare.voter = byz;
    prepare.sig = byz_signer.Sign(prepare.Header(PbftPrepareMsg::kDomain));
    return prepare.ToMessage();
  };
  const PrincipalId honest = 1;
  for (int round = 0; round < 2; ++round) {
    cluster.net().Send(byz, honest, make_prepare("value-a"));
    cluster.net().Send(byz, honest, make_prepare("value-b"));
  }
  cluster.sim().RunUntil(Millis(5));
  EXPECT_EQ(cluster.replica(honest)->stats().equivocations_detected, 1u);

  auto result = SubmitAndWait(cluster, client, MakePut("k", "v"), Seconds(10));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(cluster.CheckAgreement().ok());
}

TEST_F(AdversarialInputTest, PaxosEquivocatingAcksDetectedAndNotCounted) {
  Cluster cluster(testing::CftOptions(1));
  SimClient* client = cluster.AddClient();

  // Let the leader propose seq 1, then race a conflicting ACK from replica 2
  // ahead of its honest one. The leader must flag the equivocation once and
  // still commit off the honest quorum (self + replica 1).
  bool done = false;
  Bytes reply;
  client->SubmitOne(MakePut("k", "v"), [&](const Bytes& r) {
    reply = r;
    done = true;
  });
  const SimTime deadline = Seconds(5);
  while (cluster.sim().now() < deadline &&
         cluster.paxos(0)->uncommitted_slots() == 0) {
    ASSERT_TRUE(cluster.sim().Step());
  }
  ASSERT_EQ(cluster.paxos(0)->uncommitted_slots(), 1);

  PaxosAckMsg wrong_a{/*view=*/0, /*seq=*/1, Digest::Of(std::string("evil-a"))};
  PaxosAckMsg wrong_b{/*view=*/0, /*seq=*/1, Digest::Of(std::string("evil-b"))};
  cluster.net().Send(2, 0, wrong_a.ToMessage());
  cluster.net().Send(2, 0, wrong_b.ToMessage());  // conflict: one flag
  cluster.net().Send(2, 0, wrong_b.ToMessage());  // repeat: no second flag

  while (!done && cluster.sim().now() < deadline) {
    if (!cluster.sim().Step()) break;
  }
  ASSERT_TRUE(done);  // the equivocator could not block the honest quorum
  EXPECT_EQ(cluster.replica(0)->stats().equivocations_detected, 1u);
  auto get = SubmitAndWait(cluster, client, MakeGet("k"));
  ASSERT_TRUE(get.ok());
  EXPECT_EQ(ParseKvReply(*get).value, "v");
  EXPECT_TRUE(cluster.CheckAgreement().ok());
}

TEST_F(AdversarialInputTest, ReplayedRequestExecutesOnce) {
  // Replay a legitimate committed request verbatim from a third party: the
  // exactly-once cache must not re-execute it.
  Cluster cluster(SeeMoReOptions(SeeMoReMode::kLion, 1, 1));
  SimClient* client = cluster.AddClient();
  ASSERT_TRUE(SubmitAndWait(cluster, client, MakePut("ctr", "1")).ok());
  auto cas = SubmitAndWait(cluster, client, MakeCas("ctr", "1", "2"));
  ASSERT_TRUE(cas.ok());
  ASSERT_EQ(ParseKvReply(*cas).status, KvResult::kOk);

  // Rebuild the CAS request exactly as the client sent it and replay it.
  KeyStore replay_keys(cluster.config().n());  // wrong keystore: forged sig
  Request replay;
  replay.client = client->id();
  replay.timestamp = 2;  // the CAS's timestamp
  replay.op = MakeCas("ctr", "1", "2");
  replay.Sign(Signer(client->id(), replay_keys));
  RawSender attacker(cluster, kClientIdBase + 500);
  attacker.Blast(replay.ToMessage());
  cluster.sim().RunUntil(cluster.sim().now() + Millis(100));

  auto get = SubmitAndWait(cluster, client, MakeGet("ctr"));
  ASSERT_TRUE(get.ok());
  EXPECT_EQ(ParseKvReply(*get).value, "2");  // not re-executed / corrupted
  EXPECT_TRUE(cluster.CheckAgreement().ok());
}

}  // namespace
}  // namespace seemore
