// The runtime fault plane end to end: the CONTROL codec's strict
// encode/decode contract (every truncation and mutation refused with a
// typed error), and real TcpTransports over loopback proving that a
// directed cut drops exactly one direction (the counters show where),
// that a cloud partition heals back to full delivery, and that link
// shaping delays frames without ever reordering a directed link.
// Ports 19200+ — rt_runtime_test.cc owns 19140-19190.

#include <functional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "rt/event_loop.h"
#include "rt/fault_plane.h"
#include "rt/frame.h"
#include "rt/tcp_transport.h"
#include "util/time.h"

namespace seemore {
namespace rt {
namespace {

bool RunUntil(EventLoop* loop, const std::function<bool()>& done,
              SimTime budget = Seconds(10)) {
  const SimTime give_up = loop->Now() + budget;
  while (!done() && loop->Now() < give_up) loop->Run(Millis(10));
  return done();
}

struct RecordingHandler final : public MessageHandler {
  void OnMessage(PrincipalId from, Payload payload) override {
    froms.push_back(from);
    messages.push_back(payload.ToBytes());
  }
  std::vector<PrincipalId> froms;
  std::vector<Bytes> messages;
};

Bytes AsBytes(const char* text) {
  const auto* p = reinterpret_cast<const uint8_t*>(text);
  return Bytes(p, p + std::char_traits<char>::length(text));
}

FaultCommand FullyPopulatedCommand() {
  FaultCommand command;
  command.kind = ControlKind::kShapeLink;
  command.from = 3;
  command.to = 0;
  command.replica = 5;
  command.byz_flags = 0xdeadbeef;
  command.mode = 2;
  command.delay_us = 1500;
  command.jitter_us = 250;
  command.drop_ppm = 100000;
  command.value = 7;
  return command;
}

TEST(RtFaultCodec, FaultCommandRoundTripsEveryField) {
  const FaultCommand command = FullyPopulatedCommand();
  const Bytes body = EncodeFaultCommandBody(command);
  const auto decoded = DecodeFaultCommand(body);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->kind, command.kind);
  EXPECT_EQ(decoded->from, command.from);
  EXPECT_EQ(decoded->to, command.to);
  EXPECT_EQ(decoded->replica, command.replica);
  EXPECT_EQ(decoded->byz_flags, command.byz_flags);
  EXPECT_EQ(decoded->mode, command.mode);
  EXPECT_EQ(decoded->delay_us, command.delay_us);
  EXPECT_EQ(decoded->jitter_us, command.jitter_us);
  EXPECT_EQ(decoded->drop_ppm, command.drop_ppm);
  EXPECT_EQ(decoded->value, command.value);

  // Sentinel defaults (-1 link endpoints) survive the trip too.
  FaultCommand heal;
  heal.kind = ControlKind::kHeal;
  const auto heal_decoded = DecodeFaultCommand(EncodeFaultCommandBody(heal));
  ASSERT_TRUE(heal_decoded.ok());
  EXPECT_EQ(heal_decoded->kind, ControlKind::kHeal);
  EXPECT_EQ(heal_decoded->from, -1);
  EXPECT_EQ(heal_decoded->to, -1);
  EXPECT_EQ(heal_decoded->replica, -1);
}

TEST(RtFaultCodec, EveryTruncationIsRefused) {
  const Bytes body = EncodeFaultCommandBody(FullyPopulatedCommand());
  for (size_t len = 0; len < body.size(); ++len) {
    EXPECT_FALSE(DecodeFaultCommand(body.data(), len).ok())
        << "accepted a " << len << "-byte prefix of a "
        << body.size() << "-byte command";
  }
  // A trailing byte is just as malformed as a missing one.
  Bytes padded = body;
  padded.push_back(0);
  EXPECT_FALSE(DecodeFaultCommand(padded).ok());
}

TEST(RtFaultCodec, GarbageMagicVersionAndKindRefused) {
  const Bytes body = EncodeFaultCommandBody(FullyPopulatedCommand());

  Bytes bad_magic = body;
  bad_magic[0] ^= 0xff;
  EXPECT_FALSE(DecodeFaultCommand(bad_magic).ok());

  Bytes bad_version = body;
  bad_version[4] ^= 0xff;
  EXPECT_FALSE(DecodeFaultCommand(bad_version).ok());

  // The kind byte follows magic (u32) + version (u8); 0 and anything past
  // kShapeLink are outside the enum and must be refused.
  Bytes bad_kind = body;
  bad_kind[5] = 0;
  EXPECT_FALSE(DecodeFaultCommand(bad_kind).ok());
  bad_kind[5] = 200;
  EXPECT_FALSE(DecodeFaultCommand(bad_kind).ok());

  const Bytes noise = AsBytes("not a control frame at all, honest");
  EXPECT_FALSE(DecodeFaultCommand(noise).ok());
}

TEST(RtFaultPlane, DirectedCutDropsExactlyOneDirection) {
  EventLoop loop;
  ASSERT_TRUE(loop.init_status().ok());

  TcpTransportOptions options;
  options.num_replicas = 2;
  options.base_port = 19200;
  options.fingerprint = 0xfa017;

  TcpTransport node0(&loop, options);
  TcpTransport node1(&loop, options);
  RecordingHandler handler0;
  RecordingHandler handler1;
  node0.Register(0, Zone::kPrivate, &handler0, /*metered=*/true);
  node1.Register(1, Zone::kPublic, &handler1, /*metered=*/true);
  ASSERT_TRUE(RunUntil(&loop, [&] {
    return node0.ConnectedTo(1) && node1.ConnectedTo(0);
  })) << "cluster never became fully connected";

  // Cut 1 -> 0 the way the launcher does: the command lands on both
  // endpoints, so the sender refuses to enqueue and the receiver refuses
  // in-flight stragglers.
  FaultCommand cut;
  cut.kind = ControlKind::kCutLink;
  cut.from = 1;
  cut.to = 0;
  node0.ApplyControl(cut);
  node1.ApplyControl(cut);

  node1.Send(1, 0, Payload(AsBytes("blocked")));
  node0.Send(0, 1, Payload(AsBytes("through")));
  ASSERT_TRUE(RunUntil(&loop, [&] { return !handler1.messages.empty(); }))
      << "the uncut direction must keep delivering";
  // Give any erroneously-sent frame ample time to arrive.
  RunUntil(&loop, [] { return false; }, Millis(200));

  EXPECT_EQ(handler1.messages[0], AsBytes("through"));
  EXPECT_TRUE(handler0.messages.empty()) << "cut direction delivered";
  EXPECT_EQ(node1.counters().fault_dropped_tx, 1u);
  EXPECT_EQ(node0.counters().fault_dropped_tx, 0u);
  EXPECT_EQ(node0.counters().fault_dropped_rx, 0u)
      << "nothing was in flight when the cut landed";

  // Restore and the direction comes back.
  FaultCommand restore;
  restore.kind = ControlKind::kRestoreLink;
  restore.from = 1;
  restore.to = 0;
  node0.ApplyControl(restore);
  node1.ApplyControl(restore);
  node1.Send(1, 0, Payload(AsBytes("again")));
  ASSERT_TRUE(RunUntil(&loop, [&] { return !handler0.messages.empty(); }));
  EXPECT_EQ(handler0.messages[0], AsBytes("again"));
}

TEST(RtFaultPlane, PartitionCutsCrossCloudAndHealRestores) {
  EventLoop loop;
  ASSERT_TRUE(loop.init_status().ok());

  TcpTransportOptions options;
  options.num_replicas = 2;
  options.base_port = 19210;
  options.fingerprint = 0xfa018;
  options.trusted_count = 1;  // replica 0 private, replica 1 public

  TcpTransport node0(&loop, options);
  TcpTransport node1(&loop, options);
  RecordingHandler handler0;
  RecordingHandler handler1;
  node0.Register(0, Zone::kPrivate, &handler0, true);
  node1.Register(1, Zone::kPublic, &handler1, true);
  ASSERT_TRUE(RunUntil(&loop, [&] {
    return node0.ConnectedTo(1) && node1.ConnectedTo(0);
  }));

  FaultCommand partition;
  partition.kind = ControlKind::kPartition;
  node0.ApplyControl(partition);
  node1.ApplyControl(partition);

  node0.Send(0, 1, Payload(AsBytes("into the void")));
  node1.Send(1, 0, Payload(AsBytes("also the void")));
  RunUntil(&loop, [] { return false; }, Millis(200));
  EXPECT_TRUE(handler0.messages.empty());
  EXPECT_TRUE(handler1.messages.empty());
  EXPECT_EQ(node0.counters().fault_dropped_tx, 1u);
  EXPECT_EQ(node1.counters().fault_dropped_tx, 1u);

  FaultCommand heal;
  heal.kind = ControlKind::kHeal;
  node0.ApplyControl(heal);
  node1.ApplyControl(heal);

  node0.Send(0, 1, Payload(AsBytes("back")));
  node1.Send(1, 0, Payload(AsBytes("online")));
  ASSERT_TRUE(RunUntil(&loop, [&] {
    return !handler0.messages.empty() && !handler1.messages.empty();
  })) << "heal must restore delivery in both directions";
  EXPECT_EQ(handler0.messages[0], AsBytes("online"));
  EXPECT_EQ(handler1.messages[0], AsBytes("back"));
}

TEST(RtFaultPlane, ShapedLinkDelaysWithoutReordering) {
  EventLoop loop;
  ASSERT_TRUE(loop.init_status().ok());

  TcpTransportOptions options;
  options.num_replicas = 2;
  options.base_port = 19220;
  options.fingerprint = 0xfa019;

  TcpTransport node0(&loop, options);
  TcpTransport node1(&loop, options);
  RecordingHandler handler0;
  RecordingHandler handler1;
  node0.Register(0, Zone::kPrivate, &handler0, true);
  node1.Register(1, Zone::kPublic, &handler1, true);
  ASSERT_TRUE(RunUntil(&loop, [&] {
    return node0.ConnectedTo(1) && node1.ConnectedTo(0);
  }));

  // Heavy jitter relative to the base delay: without the per-link FIFO
  // clamp (monotone release times), back-to-back frames would routinely
  // swap places.
  FaultCommand shape;
  shape.kind = ControlKind::kShapeLink;
  shape.from = 1;
  shape.to = 0;
  shape.delay_us = 2000;
  shape.jitter_us = 5000;
  node1.ApplyControl(shape);

  constexpr int kFrames = 24;
  std::vector<Bytes> sent;
  for (int i = 0; i < kFrames; ++i) {
    sent.push_back(AsBytes(("frame-" + std::to_string(i)).c_str()));
    node1.Send(1, 0, Payload(sent.back()));
  }
  ASSERT_TRUE(RunUntil(&loop, [&] {
    return handler0.messages.size() == static_cast<size_t>(kFrames);
  })) << "only " << handler0.messages.size() << " of " << kFrames
      << " shaped frames arrived";

  EXPECT_EQ(handler0.messages, sent)
      << "shaping must preserve per-link FIFO order";
  EXPECT_GE(node1.counters().fault_delayed, static_cast<uint64_t>(kFrames));
  EXPECT_EQ(node1.counters().fault_dropped_tx, 0u);
}

TEST(RtFaultPlane, FilterPrimitivesAreDirectedAndHealable) {
  // The plane itself, no sockets: directionality, partition coverage by
  // trusted prefix, and Heal() reporting whether anything was cleared.
  FaultPlane plane(42);
  EXPECT_FALSE(plane.active());
  EXPECT_FALSE(plane.Heal()) << "healing a clean plane clears nothing";

  plane.CutLink(4, 0);
  EXPECT_TRUE(plane.active());
  EXPECT_TRUE(plane.ShouldDropOutbound(4, 0));
  EXPECT_TRUE(plane.ShouldDropInbound(4, 0));
  EXPECT_FALSE(plane.ShouldDropOutbound(0, 4)) << "cuts are directed";
  EXPECT_FALSE(plane.ShouldDropInbound(0, 4));
  plane.RestoreLink(4, 0);
  EXPECT_FALSE(plane.ShouldDropOutbound(4, 0));

  // s=2, n=4: every pair spanning {0,1} x {2,3} is cut both ways;
  // intra-cloud pairs are untouched.
  plane.PartitionClouds(/*trusted_count=*/2, /*num_replicas=*/4);
  for (int trusted = 0; trusted < 2; ++trusted) {
    for (int pub = 2; pub < 4; ++pub) {
      EXPECT_TRUE(plane.IsCut(trusted, pub));
      EXPECT_TRUE(plane.IsCut(pub, trusted));
    }
  }
  EXPECT_FALSE(plane.IsCut(0, 1));
  EXPECT_FALSE(plane.IsCut(2, 3));
  EXPECT_TRUE(plane.Heal());
  EXPECT_FALSE(plane.active());

  // Shaped holds are monotone per link: a later frame never releases
  // before an earlier one, whatever the jitter draws.
  FaultPlane::Shape shape;
  shape.delay = Micros(500);
  shape.jitter = Micros(2000);
  plane.ShapeLink(1, 0, shape);
  SimTime now = 0;
  SimTime last_release = 0;
  for (int i = 0; i < 64; ++i) {
    const SimTime hold = plane.HoldFor(1, 0, now);
    EXPECT_GE(hold, 0);
    const SimTime release = now + hold;
    EXPECT_GE(release, last_release) << "frame " << i << " overtook";
    last_release = release;
  }
  // The other direction is unshaped.
  EXPECT_EQ(plane.HoldFor(0, 1, now), 0);
}

}  // namespace
}  // namespace rt
}  // namespace seemore
