// Shared helpers for protocol integration tests: canned cluster options,
// convenience runners, and completion predicates.

#ifndef SEEMORE_TESTS_TEST_UTIL_H_
#define SEEMORE_TESTS_TEST_UTIL_H_

#include <memory>
#include <string>
#include <vector>

#include "harness/cluster.h"
#include "harness/runner.h"

namespace seemore {
namespace testing {

/// Fast, deterministic network for tests (small latency, some jitter so
/// message reordering happens).
inline NetworkConfig TestNet() {
  NetworkConfig net;
  net.intra_private = {Micros(80), Micros(20)};
  net.intra_public = {Micros(80), Micros(20)};
  net.cross_cloud = {Micros(120), Micros(30)};
  net.client_link = {Micros(120), Micros(30)};
  return net;
}

inline ClusterOptions SeeMoReOptions(SeeMoReMode mode, int c, int m,
                                     uint64_t seed = 1) {
  ClusterOptions options;
  options.config.kind = ProtocolKind::kSeeMoRe;
  options.config.c = c;
  options.config.m = m;
  options.config.s = 2 * c;          // the paper's bench topology (§6.1)
  options.config.p = 3 * m + 1;
  if (options.config.s < c + 1) options.config.s = c + 1;
  options.config.initial_mode = mode;
  options.config.checkpoint_period = 16;
  options.config.view_change_timeout = Millis(20);
  options.net = TestNet();
  options.seed = seed;
  options.client_retransmit_timeout = Millis(60);
  return options;
}

inline ClusterOptions CftOptions(int f, uint64_t seed = 1) {
  ClusterOptions options;
  options.config.kind = ProtocolKind::kCft;
  options.config.f = f;
  options.config.checkpoint_period = 16;
  options.config.view_change_timeout = Millis(20);
  options.net = TestNet();
  options.seed = seed;
  options.client_retransmit_timeout = Millis(60);
  return options;
}

inline ClusterOptions BftOptions(int f, uint64_t seed = 1) {
  ClusterOptions options = CftOptions(f, seed);
  options.config.kind = ProtocolKind::kBft;
  return options;
}

inline ClusterOptions SUpRightOptions(int c, int m, uint64_t seed = 1) {
  ClusterOptions options;
  options.config.kind = ProtocolKind::kSUpRight;
  options.config.c = c;
  options.config.m = m;
  options.config.s = 2 * c;
  options.config.p = HybridNetworkSize(m, c) - options.config.s;
  options.config.checkpoint_period = 16;
  options.config.view_change_timeout = Millis(20);
  options.net = TestNet();
  options.seed = seed;
  options.client_retransmit_timeout = Millis(60);
  return options;
}

/// Submit one KV op synchronously: drives the simulator until the reply
/// quorum is reached (or `timeout` passes). Returns the result bytes.
inline Result<Bytes> SubmitAndWait(Cluster& cluster, SimClient* client,
                                   Bytes op, SimTime timeout = Seconds(5)) {
  Bytes result;
  bool done = false;
  client->SubmitOne(std::move(op), [&](const Bytes& r) {
    result = r;
    done = true;
  });
  const SimTime deadline = cluster.sim().now() + timeout;
  while (!done && cluster.sim().now() < deadline) {
    if (!cluster.sim().Step()) break;
    if (cluster.sim().now() > deadline) break;
  }
  if (!done) return Status::Timeout("request did not complete");
  return result;
}

/// Run a closed-loop burst and return total completions.
inline uint64_t RunBurst(Cluster& cluster, int clients, SimTime duration,
                         uint64_t seed = 7) {
  RunResult result = RunClosedLoop(cluster, clients,
                                   KvWorkload(seed, 64, 0.5), /*warmup=*/0,
                                   duration);
  return result.completed;
}

}  // namespace testing
}  // namespace seemore

#endif  // SEEMORE_TESTS_TEST_UTIL_H_
