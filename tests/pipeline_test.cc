// Regression test for tuning.pipeline_max: EVERY protocol's primary must
// cap concurrently uncommitted (proposed, not yet committed) instances at
// pipeline_max — historically only SeeMoRe honoured the knob; PBFT and
// Paxos now enforce it through the shared PrimaryPipeline. The invariant is
// checked at every simulator event boundary, not just at quiescence.

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>

#include "tests/test_util.h"

namespace seemore {
namespace {

using testing::BftOptions;
using testing::CftOptions;
using testing::SeeMoReOptions;
using testing::SubmitAndWait;
using testing::SUpRightOptions;

/// Drive a closed-loop burst while asserting the primary's uncommitted-slot
/// count never exceeds pipeline_max at any event boundary. Returns the
/// maximum concurrency observed (to prove the pipeline actually fills).
int DriveAndAssertBound(Cluster& cluster, int pipeline_max,
                        const std::function<int()>& uncommitted_at_primary) {
  OpFactory ops = KvWorkload(/*seed=*/5, /*key_space=*/64,
                             /*put_fraction=*/0.5);
  for (int i = 0; i < 8; ++i) cluster.AddClient();
  for (int i = 0; i < cluster.num_clients(); ++i) {
    cluster.client(i)->Start(ops);
  }
  int max_seen = 0;
  const SimTime until = Millis(120);
  while (cluster.sim().now() < until && cluster.sim().Step()) {
    const int uncommitted = uncommitted_at_primary();
    EXPECT_LE(uncommitted, pipeline_max);
    max_seen = std::max(max_seen, uncommitted);
    if (::testing::Test::HasFailure()) break;
  }
  for (int i = 0; i < cluster.num_clients(); ++i) cluster.client(i)->Stop();
  cluster.sim().RunUntil(until + Millis(50));
  EXPECT_TRUE(cluster.CheckAgreement().ok());
  return max_seen;
}

// batch_max 1 with 8 closed-loop clients guarantees a standing backlog, so
// an unpaced primary would blow straight past the cap.
constexpr int kPipelineMax = 2;

TEST(PipelineTest, SeeMoReLionPrimaryHonoursPipelineMax) {
  ClusterOptions options = SeeMoReOptions(SeeMoReMode::kLion, 1, 1);
  options.config.pipeline_max = kPipelineMax;
  options.config.batch_max = 1;
  Cluster cluster(options);
  const int max_seen = DriveAndAssertBound(cluster, kPipelineMax, [&] {
    return cluster.seemore(0)->uncommitted_slots();
  });
  EXPECT_EQ(max_seen, kPipelineMax);  // the pipeline fills, then pacing binds
}

TEST(PipelineTest, PbftPrimaryHonoursPipelineMax) {
  ClusterOptions options = BftOptions(1);
  options.config.pipeline_max = kPipelineMax;
  options.config.batch_max = 1;
  Cluster cluster(options);
  const int max_seen = DriveAndAssertBound(cluster, kPipelineMax, [&] {
    return cluster.pbft(0)->uncommitted_slots();
  });
  EXPECT_EQ(max_seen, kPipelineMax);
}

TEST(PipelineTest, PaxosLeaderHonoursPipelineMax) {
  ClusterOptions options = CftOptions(1);
  options.config.pipeline_max = kPipelineMax;
  options.config.batch_max = 1;
  Cluster cluster(options);
  const int max_seen = DriveAndAssertBound(cluster, kPipelineMax, [&] {
    return cluster.paxos(0)->uncommitted_slots();
  });
  EXPECT_EQ(max_seen, kPipelineMax);
}

TEST(PipelineTest, SUpRightPrimaryHonoursPipelineMax) {
  ClusterOptions options = SUpRightOptions(1, 1);
  options.config.pipeline_max = kPipelineMax;
  options.config.batch_max = 1;
  Cluster cluster(options);
  const int max_seen = DriveAndAssertBound(cluster, kPipelineMax, [&] {
    return cluster.pbft(0)->uncommitted_slots();
  });
  EXPECT_EQ(max_seen, kPipelineMax);
}

TEST(PipelineTest, DeeperPipelineNeverCommitsLessAtBatchOne) {
  // Sanity: with batching disabled (one request per instance) a deeper
  // pipeline can only overlap more agreement rounds, never fewer — so depth
  // 8 commits at least as many requests as depth 1 in the same virtual
  // time. (With batching enabled the tradeoff is workload-dependent — depth
  // drains the queue before batches fill — which is exactly what
  // bench_pipeline measures under the paper's cost model.)
  auto completed_at_depth = [](int depth) {
    ClusterOptions options = SeeMoReOptions(SeeMoReMode::kLion, 1, 1);
    options.config.pipeline_max = depth;
    options.config.batch_max = 1;
    Cluster cluster(options);
    return testing::RunBurst(cluster, 16, Millis(150), /*seed=*/11);
  };
  const uint64_t shallow = completed_at_depth(1);
  const uint64_t deep = completed_at_depth(8);
  EXPECT_GE(deep, shallow);
}

}  // namespace
}  // namespace seemore
