// View-change stress: the failure patterns that historically wedge SMR
// implementations. Several of these are regression tests for bugs found
// while building this repo (see the comments), all of which manifest as a
// permanently view-churning or silent cluster.

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace seemore {
namespace {

using testing::RunBurst;
using testing::SeeMoReOptions;
using testing::SubmitAndWait;

// Regression: after a view change, replicas that had already committed a
// re-proposed sequence number must still vote in the new view, or peers
// that missed the commit can never assemble a quorum and the cluster churns
// views forever. Trigger: view change under load with a deep in-flight
// pipeline and mixed commit progress.
TEST(ViewChangeStressTest, ViewChangeUnderLoadRecoversLion) {
  ClusterOptions options = SeeMoReOptions(SeeMoReMode::kLion, 1, 1);
  options.config.batch_max = 64;
  options.config.pipeline_max = 4;
  Cluster cluster(options);
  for (int i = 0; i < 12; ++i) {
    cluster.AddClient()->Start(KvWorkload(700 + i, 64, 0.5));
  }
  cluster.sim().RunUntil(Millis(100));
  cluster.Crash(0);  // primary dies mid-load
  cluster.sim().RunUntil(Millis(800));
  uint64_t before = 0;
  for (int i = 0; i < 12; ++i) before += cluster.client(i)->completed();
  cluster.sim().RunUntil(Millis(1100));
  uint64_t after = 0;
  for (int i = 0; i < 12; ++i) after += cluster.client(i)->completed();
  // Sustained progress after recovery, not a one-off trickle.
  EXPECT_GT(after - before, 200u);
  EXPECT_TRUE(cluster.CheckAgreement().ok());
  EXPECT_LT(cluster.seemore(1)->view(), 20u) << "view churn detected";
}

TEST(ViewChangeStressTest, ViewChangeUnderLoadRecoversDog) {
  ClusterOptions options = SeeMoReOptions(SeeMoReMode::kDog, 1, 1);
  options.config.batch_max = 64;
  options.config.pipeline_max = 4;
  Cluster cluster(options);
  for (int i = 0; i < 12; ++i) {
    cluster.AddClient()->Start(KvWorkload(800 + i, 64, 0.5));
  }
  cluster.sim().RunUntil(Millis(100));
  cluster.Crash(0);
  cluster.sim().RunUntil(Millis(800));
  uint64_t before = 0;
  for (int i = 0; i < 12; ++i) before += cluster.client(i)->completed();
  cluster.sim().RunUntil(Millis(1100));
  uint64_t after = 0;
  for (int i = 0; i < 12; ++i) after += cluster.client(i)->completed();
  EXPECT_GT(after - before, 200u);
  EXPECT_TRUE(cluster.CheckAgreement().ok());
  EXPECT_LT(cluster.seemore(1)->view(), 20u) << "view churn detected";
}

// Regression: the new primary's request-dedup map must reset on view entry,
// or clients whose request was nooped by the view change are starved
// forever (their retransmissions are "already seen").
TEST(ViewChangeStressTest, NoopedRequestsRecoverViaRetransmission) {
  ClusterOptions options = SeeMoReOptions(SeeMoReMode::kLion, 1, 1);
  options.config.pipeline_max = 4;
  Cluster cluster(options);
  for (int i = 0; i < 8; ++i) {
    cluster.AddClient()->Start(KvWorkload(900 + i, 64, 0.5));
  }
  // Repeatedly crash+recover the view-0 primary to force noop-heavy VCs.
  cluster.sim().RunUntil(Millis(80));
  cluster.Crash(0);
  cluster.sim().RunUntil(Millis(400));
  cluster.Recover(0);
  cluster.sim().RunUntil(Millis(500));
  cluster.Crash(1);
  cluster.sim().RunUntil(Millis(1200));

  // EVERY client keeps completing requests (none starved).
  for (int i = 0; i < 8; ++i) {
    const uint64_t before = cluster.client(i)->completed();
    cluster.sim().RunUntil(cluster.sim().now() + Millis(400));
    EXPECT_GT(cluster.client(i)->completed(), before) << "client " << i
                                                      << " starved";
  }
  EXPECT_TRUE(cluster.CheckAgreement().ok());
}

// Cascading failures: crash the primary of every successive view in a CFT
// cluster that can afford it (f=2), then verify the survivors finish.
TEST(ViewChangeStressTest, CascadingPrimaryFailuresCft) {
  ClusterOptions options = testing::CftOptions(2);
  Cluster cluster(options);
  SimClient* client = cluster.AddClient();
  ASSERT_TRUE(SubmitAndWait(cluster, client, MakePut("k", "v0")).ok());
  cluster.Crash(0);
  ASSERT_TRUE(SubmitAndWait(cluster, client, MakePut("k", "v1")).ok());
  cluster.Crash(1);
  ASSERT_TRUE(
      SubmitAndWait(cluster, client, MakePut("k", "v2"), Seconds(10)).ok());
  auto get = SubmitAndWait(cluster, client, MakeGet("k"));
  ASSERT_TRUE(get.ok());
  EXPECT_EQ(ParseKvReply(*get).value, "v2");
  EXPECT_TRUE(cluster.CheckAgreement().ok());
}

// A Byzantine public node spams VIEW-CHANGE messages: a single liar must
// never force the cluster out of a healthy view (join needs a trusted
// suspicion or m+1 public ones).
TEST(ViewChangeStressTest, LoneByzantineCannotForceViewChanges) {
  Cluster cluster(SeeMoReOptions(SeeMoReMode::kLion, 1, 1));
  // Run healthy traffic; replica 5 votes garbage the whole time (its VC
  // messages from timer expiry would also be alone).
  cluster.SetByzantine(5, kByzWrongVotes);
  RunBurst(cluster, 4, Millis(400));
  // The healthy primary was never deposed.
  EXPECT_EQ(cluster.seemore(0)->view(), 0u);
  EXPECT_TRUE(cluster.CheckAgreement().ok());
}

// Peacock: crash the primary of view v, then the primary of view v+1 too
// (both public, within m only if m >= 2 — use m=2).
TEST(ViewChangeStressTest, ConsecutivePeacockPrimaryFailures) {
  Cluster cluster(SeeMoReOptions(SeeMoReMode::kPeacock, 1, 2));
  SimClient* client = cluster.AddClient();
  ASSERT_TRUE(SubmitAndWait(cluster, client, MakePut("a", "1")).ok());
  const PrincipalId p0 = cluster.seemore(0)->current_primary();
  cluster.Crash(p0);
  cluster.sim().RunUntil(cluster.sim().now() + Millis(30));
  // Also crash what will be the next primary before it can do anything.
  const PrincipalId p1 = cluster.config().PeacockPrimary(
      cluster.seemore(0)->view() + 1);
  if (p1 != p0) cluster.Crash(p1);
  auto result = SubmitAndWait(cluster, client, MakePut("b", "2"), Seconds(15));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  auto get = SubmitAndWait(cluster, client, MakeGet("a"));
  ASSERT_TRUE(get.ok());
  EXPECT_EQ(ParseKvReply(*get).value, "1");
  EXPECT_TRUE(cluster.CheckAgreement().ok());
}

}  // namespace
}  // namespace seemore
