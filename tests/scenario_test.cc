// The declarative scenario surface: name<->enum mappings (exhaustive round
// trips), ScenarioSpec validation (including the schedule checks seemore_ctl
// historically skipped), the JSON codec (lossless round trip, unknown-field
// rejection), the builder, and the canonical-scenario registry.

#include <gtest/gtest.h>

#include "consensus/replica_base.h"
#include "scenario/builder.h"
#include "scenario/names.h"
#include "scenario/registry.h"
#include "scenario/spec.h"

namespace seemore {
namespace scenario {
namespace {

TEST(NamesTest, ProtocolKindRoundTripsExhaustively) {
  for (ProtocolKind kind : AllProtocolKinds()) {
    Result<ProtocolKind> back = ProtocolKindFromToken(ProtocolKindToken(kind));
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, kind);
  }
  EXPECT_FALSE(ProtocolKindFromToken("pbft").ok());
  EXPECT_FALSE(ProtocolKindFromToken("").ok());
}

TEST(NamesTest, SeeMoReModeRoundTripsExhaustively) {
  for (SeeMoReMode mode : AllSeeMoReModes()) {
    Result<SeeMoReMode> back = SeeMoReModeFromToken(SeeMoReModeToken(mode));
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, mode);
  }
  EXPECT_FALSE(SeeMoReModeFromToken("Lion").ok());  // tokens are lowercase
}

TEST(NamesTest, ByzFlagsRoundTripExhaustively) {
  // Every subset of the defined bits survives token round trip.
  const auto& bits = AllByzFlagBits();
  for (uint32_t subset = 0; subset < (1u << bits.size()); ++subset) {
    uint32_t flags = 0;
    for (size_t i = 0; i < bits.size(); ++i) {
      if (subset & (1u << i)) flags |= bits[i];
    }
    Result<uint32_t> back = ByzFlagsFromToken(ByzFlagsToken(flags));
    ASSERT_TRUE(back.ok()) << ByzFlagsToken(flags);
    EXPECT_EQ(*back, flags);
  }
  EXPECT_FALSE(ByzFlagsFromToken("wrongvotes+nope").ok());
}

TEST(NamesTest, WorkloadStateMachineEventKindsRoundTrip) {
  for (WorkloadKind kind : AllWorkloadKinds()) {
    Result<WorkloadKind> back = WorkloadKindFromToken(WorkloadKindToken(kind));
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, kind);
  }
  for (StateMachineKind kind : AllStateMachineKinds()) {
    Result<StateMachineKind> back =
        StateMachineKindFromToken(StateMachineKindToken(kind));
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, kind);
  }
  for (EventKind kind : AllEventKinds()) {
    Result<EventKind> back = EventKindFromToken(EventKindToken(kind));
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, kind);
  }
  EXPECT_FALSE(EventKindFromToken("reboot").ok());
}

TEST(SpecTest, DefaultsValidate) {
  EXPECT_TRUE(ScenarioSpec().Validate().ok());
}

TEST(SpecTest, ResolvesPaperTopologyDefaults) {
  ScenarioSpec spec;
  spec.topology.c = 2;
  spec.topology.m = 3;
  ClusterConfig config = spec.ResolvedConfig();
  EXPECT_EQ(config.s, 4);   // 2c
  EXPECT_EQ(config.p, 10);  // 3m+1
  EXPECT_EQ(config.n(), 14);

  spec.protocol = ProtocolKind::kSUpRight;
  config = spec.ResolvedConfig();
  EXPECT_EQ(config.s, 4);
  EXPECT_EQ(config.p, HybridNetworkSize(3, 2) - 4);
}

TEST(SpecTest, RejectsOutOfRangeScheduleReplica) {
  // The seemore_ctl regression: --crash=99@100 used to index replicas_[99].
  ScenarioBuilder builder;
  builder.SeeMoRe(SeeMoReMode::kLion, 1, 1).CrashAt(Millis(100), 99);
  Result<ScenarioSpec> built = builder.Build();
  ASSERT_FALSE(built.ok());
  EXPECT_EQ(built.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(built.status().message().find("replica 99"), std::string::npos);

  ScenarioBuilder negative;
  negative.SeeMoRe(SeeMoReMode::kLion, 1, 1).RecoverAt(Millis(10), -1);
  EXPECT_FALSE(negative.Build().ok());
}

TEST(SpecTest, RejectsInvalidScheduleSemantics) {
  // Byzantine behaviour on a trusted SeeMoRe replica.
  ScenarioBuilder trusted_byz;
  trusted_byz.SeeMoRe(SeeMoReMode::kLion, 1, 1)
      .ByzantineAt(Millis(10), 0, kByzWrongVotes);
  EXPECT_EQ(trusted_byz.Build().status().code(),
            StatusCode::kInvalidArgument);

  // Mode switches need SeeMoRe.
  ScenarioBuilder cft_switch;
  cft_switch.Cft(1).SwitchAt(Millis(10), SeeMoReMode::kDog);
  EXPECT_EQ(cft_switch.Build().status().code(), StatusCode::kInvalidArgument);

  // Cloud partitions need a hybrid deployment.
  ScenarioBuilder bft_partition;
  bft_partition.Bft(1).PartitionCloudsAt(Millis(10));
  EXPECT_EQ(bft_partition.Build().status().code(),
            StatusCode::kInvalidArgument);

  // Negative event time.
  ScenarioBuilder past;
  past.SeeMoRe(SeeMoReMode::kLion, 1, 1).CrashAt(Millis(-5), 0);
  EXPECT_EQ(past.Build().status().code(), StatusCode::kInvalidArgument);
}

TEST(SpecTest, RejectsInvalidRestartSchedules) {
  // A restart replaces a crashed process; restarting a live replica is a
  // schedule bug, caught in TIME order (the crash at 10ms does not license
  // a restart at 5ms).
  ScenarioBuilder no_crash;
  no_crash.SeeMoRe(SeeMoReMode::kLion, 1, 1)
      .Durability()
      .RestartAt(Millis(5), 0)
      .CrashAt(Millis(10), 0);
  Result<ScenarioSpec> built = no_crash.Build();
  ASSERT_FALSE(built.ok());
  EXPECT_EQ(built.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(built.status().message().find("without a preceding crash"),
            std::string::npos);

  // A recover consumes the crash: the replica is live again.
  ScenarioBuilder after_recover;
  after_recover.SeeMoRe(SeeMoReMode::kLion, 1, 1)
      .Durability()
      .CrashAt(Millis(10), 0)
      .RecoverAt(Millis(20), 0)
      .RestartAt(Millis(30), 0);
  EXPECT_EQ(after_recover.Build().status().code(),
            StatusCode::kInvalidArgument);

  // Out-of-range replica, same typed error as the other event families.
  ScenarioBuilder oob;
  oob.SeeMoRe(SeeMoReMode::kLion, 1, 1)
      .Durability()
      .CrashAt(Millis(10), 99)
      .RestartAt(Millis(20), 99);
  built = oob.Build();
  ASSERT_FALSE(built.ok());
  EXPECT_EQ(built.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(built.status().message().find("replica 99"), std::string::npos);

  // The whole restart/fault-injection family needs durability enabled.
  ScenarioBuilder no_durability;
  no_durability.SeeMoRe(SeeMoReMode::kLion, 1, 1)
      .CrashAt(Millis(10), 0)
      .RestartAt(Millis(20), 0);
  built = no_durability.Build();
  ASSERT_FALSE(built.ok());
  EXPECT_NE(built.status().message().find("durability"), std::string::npos);

  // Log tampering also requires the target to be down...
  ScenarioBuilder live_tamper;
  live_tamper.SeeMoRe(SeeMoReMode::kLion, 1, 1)
      .Durability()
      .TruncateLogAt(Millis(10), 0, 100);
  EXPECT_EQ(live_tamper.Build().status().code(),
            StatusCode::kInvalidArgument);

  // ...and a non-negative argument.
  ScenarioBuilder negative_arg;
  negative_arg.SeeMoRe(SeeMoReMode::kLion, 1, 1)
      .Durability()
      .CrashAt(Millis(10), 0)
      .CorruptLogAt(Millis(20), 0, -1);
  EXPECT_EQ(negative_arg.Build().status().code(),
            StatusCode::kInvalidArgument);

  // A power loss is a crash for scheduling purposes: restart after it is
  // legal, and the valid twin of everything above builds fine.
  ScenarioBuilder valid;
  valid.SeeMoRe(SeeMoReMode::kLion, 1, 1)
      .Durability(/*fsync_interval=*/64)
      .PowerLossAt(Millis(10), 1)
      .TruncateLogAt(Millis(15), 1, 100)
      .RestartAt(Millis(20), 1);
  EXPECT_TRUE(valid.Build().ok()) << valid.Build().status().ToString();
}

TEST(SpecTest, RejectsBadDurabilityKnobs) {
  ScenarioSpec spec;
  spec.durability.enabled = true;
  spec.durability.fsync_interval = 0;
  EXPECT_EQ(spec.Validate().code(), StatusCode::kInvalidArgument);

  spec = ScenarioSpec();
  spec.durability.enabled = true;
  spec.durability.segment_bytes = 1024;  // below the 4 KiB floor
  EXPECT_EQ(spec.Validate().code(), StatusCode::kInvalidArgument);
}

TEST(SpecTest, RejectsBadParameters) {
  ScenarioSpec spec;
  spec.net.drop_probability = 1.5;
  EXPECT_FALSE(spec.Validate().ok());

  spec = ScenarioSpec();
  spec.workload.kind = WorkloadKind::kKv;
  spec.workload.keys = 0;
  EXPECT_FALSE(spec.Validate().ok());

  spec = ScenarioSpec();
  spec.plan.measure = 0;
  EXPECT_FALSE(spec.Validate().ok());

  spec = ScenarioSpec();
  spec.plan.sweep_clients = {8, 0};
  EXPECT_FALSE(spec.Validate().ok());
}

/// A spec with every field off its default, to make the round trip earn
/// its keep.
ScenarioSpec FullyLoadedSpec() {
  ScenarioBuilder builder;
  builder.Name("kitchen-sink")
      .Description("every field off-default")
      .SeeMoRe(SeeMoReMode::kDog, 2, 1)
      .CloudSizes(4, 7)
      .Batching(64, 4)
      .CheckpointPeriod(256)
      .ViewChangeTimeout(Millis(25))
      .LionSignAccepts(true)
      .Drop(0.01)
      .Duplicate(0.02)
      .CrossCloudLink(Micros(1500), Micros(150))
      .ClientLink(Micros(200), Micros(50))
      .Seed(987654321)
      .Clients(12)
      .RetransmitTimeout(Millis(80))
      .Kv(64, 0.25)
      .Warmup(Millis(111))
      .Measure(Millis(222))
      .Drain(Millis(333))
      .Timeline(Millis(5))
      .CheckConvergence()
      .Sweep({1, 8, 64})
      .CrashAt(Millis(10), 0)
      .RecoverAt(Millis(20), 0)
      .ByzantineAt(Millis(30), 6, kByzWrongVotes | kByzLieToClients)
      .SwitchAt(Millis(40), SeeMoReMode::kPeacock)
      .CrashPrimaryAt(Millis(50))
      .PartitionCloudsAt(Millis(60))
      .HealCloudsAt(Millis(70))
      .Durability(/*fsync_interval=*/8, /*segment_bytes=*/128 * 1024)
      .CrashAt(Millis(75), 1)
      .TruncateLogAt(Millis(80), 1, 128)
      .CorruptLogAt(Millis(85), 1, 7)
      .RestartAt(Millis(90), 1)
      .PowerLossAt(Millis(95), 6)
      .RestartAt(Millis(98), 6);
  return builder.spec();
}

TEST(SpecJsonTest, LosslessRoundTrip) {
  const ScenarioSpec spec = FullyLoadedSpec();
  ASSERT_TRUE(spec.Validate().ok());
  const std::string text = spec.ToJsonText();
  Result<ScenarioSpec> back = ScenarioSpec::FromJsonText(text);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  // Bit-identical re-serialization is the round-trip criterion: it covers
  // every field, including schedule order.
  EXPECT_EQ(back->ToJsonText(), text);
  EXPECT_TRUE(back->Validate().ok());
  EXPECT_EQ(back->schedule.size(), 13u);
  EXPECT_EQ(back->schedule[3].target_mode, SeeMoReMode::kPeacock);
  EXPECT_EQ(back->plan.sweep_clients, (std::vector<int>{1, 8, 64}));
  EXPECT_TRUE(back->durability.enabled);
  EXPECT_EQ(back->durability.fsync_interval, 8);
  EXPECT_EQ(back->durability.segment_bytes, 128 * 1024);
  EXPECT_EQ(back->schedule[8].kind, EventKind::kTruncateLog);
  EXPECT_EQ(back->schedule[8].arg, 128);
  EXPECT_EQ(back->schedule[11].kind, EventKind::kPowerLoss);
}

TEST(SpecJsonTest, DefaultsRoundTripAndPartialDocsDecode) {
  const ScenarioSpec defaults;
  Result<ScenarioSpec> back =
      ScenarioSpec::FromJsonText(defaults.ToJsonText());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->ToJsonText(), defaults.ToJsonText());

  // A minimal hand-written doc: absent fields keep defaults.
  Result<ScenarioSpec> partial = ScenarioSpec::FromJsonText(
      R"({"protocol": "bft", "topology": {"f": 3}, "clients": 4})");
  ASSERT_TRUE(partial.ok()) << partial.status().ToString();
  EXPECT_EQ(partial->protocol, ProtocolKind::kBft);
  EXPECT_EQ(partial->topology.f, 3);
  EXPECT_EQ(partial->clients, 4);
  EXPECT_EQ(partial->tuning.batch_max, ScenarioSpec().tuning.batch_max);
}

TEST(SpecJsonTest, RejectsUnknownFieldsEverywhere) {
  EXPECT_FALSE(ScenarioSpec::FromJsonText(R"({"protocl": "seemore"})").ok());
  EXPECT_FALSE(
      ScenarioSpec::FromJsonText(R"({"topology": {"q": 1}})").ok());
  EXPECT_FALSE(
      ScenarioSpec::FromJsonText(R"({"tuning": {"batchmax": 4}})").ok());
  EXPECT_FALSE(ScenarioSpec::FromJsonText(
                   R"({"network": {"cross_cloud": {"base_ms": 1}}})")
                   .ok());
  EXPECT_FALSE(ScenarioSpec::FromJsonText(
                   R"({"schedule": [{"at_us": 1, "kind": "crash", "x": 2}]})")
                   .ok());
  EXPECT_FALSE(
      ScenarioSpec::FromJsonText(R"({"durability": {"fsync": 1}})").ok());
}

TEST(SpecJsonTest, RejectsMalformedSchedules) {
  // Missing kind.
  EXPECT_FALSE(
      ScenarioSpec::FromJsonText(R"({"schedule": [{"at_us": 1}]})").ok());
  // Unknown kind token.
  EXPECT_FALSE(ScenarioSpec::FromJsonText(
                   R"({"schedule": [{"at_us": 1, "kind": "explode"}]})")
                   .ok());
  // Unknown byzantine behaviour.
  EXPECT_FALSE(
      ScenarioSpec::FromJsonText(
          R"({"schedule": [{"at_us": 1, "kind": "byzantine", "replica": 3,
              "behaviours": "sneaky"}]})")
          .ok());
  // Schedule must be an array of objects.
  EXPECT_FALSE(ScenarioSpec::FromJsonText(R"({"schedule": {}})").ok());
  EXPECT_FALSE(ScenarioSpec::FromJsonText(R"({"schedule": [7]})").ok());
  // Decodes fine but fails Validate(): replica out of range.
  Result<ScenarioSpec> decoded = ScenarioSpec::FromJsonText(
      R"({"schedule": [{"at_us": 1000, "kind": "crash", "replica": 42}]})");
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->Validate().code(), StatusCode::kInvalidArgument);
}

TEST(RegistryTest, AllEntriesResolveAndValidate) {
  ASSERT_FALSE(Registry().empty());
  for (const RegistryEntry& entry : Registry()) {
    Result<ScenarioSpec> spec = FindScenario(entry.name);
    ASSERT_TRUE(spec.ok()) << entry.name;
    EXPECT_EQ(spec->name, entry.name);
    EXPECT_TRUE(spec->Validate().ok())
        << entry.name << ": " << spec->Validate().ToString();
    // Registry scenarios are files too: they must survive the codec.
    Result<ScenarioSpec> back = ScenarioSpec::FromJsonText(spec->ToJsonText());
    ASSERT_TRUE(back.ok()) << entry.name;
    EXPECT_EQ(back->ToJsonText(), spec->ToJsonText()) << entry.name;
  }
  EXPECT_EQ(FindScenario("no-such-scenario").status().code(),
            StatusCode::kNotFound);
}

TEST(RegistryTest, PaperSystemSpecsMatchSection61Topologies) {
  for (const std::string& system : PaperSystemNames()) {
    Result<ScenarioSpec> spec = PaperSystemSpec(system, 2, 1, 7);
    ASSERT_TRUE(spec.ok()) << system;
    const ClusterConfig config = spec->ResolvedConfig();
    if (system == "CFT") {
      EXPECT_EQ(config.n(), 2 * 3 + 1);
    } else if (system == "BFT") {
      EXPECT_EQ(config.n(), 3 * 3 + 1);
    } else {
      EXPECT_EQ(config.n(), HybridNetworkSize(1, 2));  // 3m+2c+1
    }
  }
  EXPECT_FALSE(PaperSystemSpec("Zebra", 1, 1, 7).ok());
}

}  // namespace
}  // namespace scenario
}  // namespace seemore
