// SeeMoRe Lion mode (§5.1): trusted primary, unsigned accepts, 2 phases,
// quorum 2m+c+1; view change among all replicas.

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace seemore {
namespace {

using testing::RunBurst;
using testing::SeeMoReOptions;
using testing::SubmitAndWait;

TEST(LionTest, CommitsSingleRequest) {
  Cluster cluster(SeeMoReOptions(SeeMoReMode::kLion, 1, 1));
  EXPECT_EQ(cluster.n(), 6);  // 2c private + 3m+1 public (§6.1)
  SimClient* client = cluster.AddClient();
  auto result = SubmitAndWait(cluster, client, MakePut("k", "v"));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(ParseKvReply(*result).status, KvResult::kOk);
}

TEST(LionTest, AllReplicasExecute) {
  Cluster cluster(SeeMoReOptions(SeeMoReMode::kLion, 1, 1));
  SimClient* client = cluster.AddClient();
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(
        SubmitAndWait(cluster, client, MakePut("k" + std::to_string(i), "v"))
            .ok());
  }
  cluster.sim().RunUntil(cluster.sim().now() + Millis(50));
  EXPECT_TRUE(cluster.CheckAgreement().ok());
  for (int i = 0; i < cluster.n(); ++i) {
    EXPECT_EQ(cluster.seemore(i)->last_executed(),
              cluster.seemore(0)->last_executed())
        << "replica " << i;
  }
}

TEST(LionTest, ToleratesCrashAndByzantineBudget) {
  // c=1 crashed private + m=1 Byzantine public simultaneously: quorum
  // 2m+c+1 = 4 of the remaining 4 honest nodes is exactly reachable.
  Cluster cluster(SeeMoReOptions(SeeMoReMode::kLion, 1, 1));
  cluster.Crash(1);                         // private backup
  cluster.SetByzantine(5, kByzWrongVotes);  // public node
  const uint64_t completed = RunBurst(cluster, 4, Millis(300));
  EXPECT_GT(completed, 30u);
  EXPECT_TRUE(cluster.CheckAgreement().ok());
}

TEST(LionTest, SilentByzantinePublic) {
  Cluster cluster(SeeMoReOptions(SeeMoReMode::kLion, 1, 1));
  cluster.SetByzantine(4, kByzSilent);
  const uint64_t completed = RunBurst(cluster, 4, Millis(250));
  EXPECT_GT(completed, 30u);
  EXPECT_TRUE(cluster.CheckAgreement().ok());
}

TEST(LionTest, PrimaryCrashViewChange) {
  Cluster cluster(SeeMoReOptions(SeeMoReMode::kLion, 1, 1));
  SimClient* client = cluster.AddClient();
  ASSERT_TRUE(SubmitAndWait(cluster, client, MakePut("a", "1")).ok());
  EXPECT_TRUE(cluster.seemore(0)->IsPrimary());

  cluster.Crash(0);
  auto after = SubmitAndWait(cluster, client, MakePut("b", "2"));
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  // The new primary is the other trusted replica (v mod S).
  EXPECT_GT(cluster.seemore(1)->view(), 0u);
  EXPECT_TRUE(cluster.seemore(1)->IsPrimary());
  EXPECT_EQ(cluster.seemore(1)->mode(), SeeMoReMode::kLion);

  auto get = SubmitAndWait(cluster, client, MakeGet("a"));
  ASSERT_TRUE(get.ok());
  EXPECT_EQ(ParseKvReply(*get).value, "1");
  EXPECT_TRUE(cluster.CheckAgreement().ok());
}

TEST(LionTest, ClientFallsBackToPublicQuorumOnRetransmit) {
  // The client cannot reach any private node: its request still commits
  // (publics forward it to the trusted primary) and the client completes on
  // m+1 matching public replies after retransmission (§5.1).
  Cluster cluster(SeeMoReOptions(SeeMoReMode::kLion, 1, 1));
  SimClient* client = cluster.AddClient();
  cluster.net().SetLinkUp(client->id(), 0, false);
  cluster.net().SetLinkUp(client->id(), 1, false);
  auto put = SubmitAndWait(cluster, client, MakePut("k", "v"), Seconds(10));
  ASSERT_TRUE(put.ok()) << put.status().ToString();
  EXPECT_EQ(ParseKvReply(*put).status, KvResult::kOk);
  EXPECT_GT(client->retransmissions(), 0u);
  auto get = SubmitAndWait(cluster, client, MakeGet("k"), Seconds(10));
  ASSERT_TRUE(get.ok()) << get.status().ToString();
  EXPECT_EQ(ParseKvReply(*get).value, "v");
}

TEST(LionTest, CheckpointCertifiedByTrustedPrimary) {
  ClusterOptions options = SeeMoReOptions(SeeMoReMode::kLion, 1, 1);
  options.config.checkpoint_period = 8;
  Cluster cluster(options);
  RunBurst(cluster, 4, Millis(300));
  cluster.sim().RunUntil(cluster.sim().now() + Millis(50));
  for (int i = 0; i < cluster.n(); ++i) {
    EXPECT_GT(cluster.seemore(i)->stable_checkpoint(), 0u) << "replica " << i;
  }
  EXPECT_TRUE(cluster.CheckAgreement().ok());
}

TEST(LionTest, RecoveringPublicNodeCatchesUp) {
  ClusterOptions options = SeeMoReOptions(SeeMoReMode::kLion, 1, 1);
  options.config.checkpoint_period = 8;
  Cluster cluster(options);
  cluster.Crash(4);
  RunBurst(cluster, 4, Millis(300));
  const uint64_t before = cluster.seemore(0)->last_executed();
  ASSERT_GT(before, 10u);
  cluster.Recover(4);
  RunBurst(cluster, 4, Millis(400));
  cluster.sim().RunUntil(cluster.sim().now() + Millis(100));
  EXPECT_GT(cluster.seemore(4)->last_executed(), before);
  EXPECT_TRUE(cluster.CheckAgreement().ok());
}

TEST(LionTest, LargerBudgetC2M2) {
  Cluster cluster(SeeMoReOptions(SeeMoReMode::kLion, 2, 2));
  EXPECT_EQ(cluster.n(), 11);  // 2c + 3m + 1 (Fig 2(b))
  cluster.Crash(1);
  cluster.SetByzantine(6, kByzWrongVotes);
  cluster.SetByzantine(7, kByzSilent);
  const uint64_t completed = RunBurst(cluster, 4, Millis(300));
  EXPECT_GT(completed, 20u);
  EXPECT_TRUE(cluster.CheckAgreement().ok());
}

TEST(LionTest, ToleratesMessageLoss) {
  ClusterOptions options = SeeMoReOptions(SeeMoReMode::kLion, 1, 1);
  options.net.drop_probability = 0.03;
  Cluster cluster(options);
  const uint64_t completed = RunBurst(cluster, 4, Millis(400));
  EXPECT_GT(completed, 20u);
  EXPECT_TRUE(cluster.CheckAgreement().ok());
}

}  // namespace
}  // namespace seemore
