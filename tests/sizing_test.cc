// Public-cloud sizing calculator (§4): Eq. 1-3, the explicit-bound method,
// and the paper's worked example (S=2, c=1, α=0.3 ⇒ rent 10 nodes).

#include <gtest/gtest.h>

#include "consensus/config.h"

namespace seemore {
namespace {

TEST(SizingTest, Equation1NetworkAndQuorum) {
  EXPECT_EQ(HybridNetworkSize(1, 1), 6);
  EXPECT_EQ(HybridNetworkSize(2, 2), 11);
  EXPECT_EQ(HybridNetworkSize(3, 1), 12);
  EXPECT_EQ(HybridNetworkSize(1, 3), 10);
  EXPECT_EQ(HybridQuorumSize(1, 1), 4);
  EXPECT_EQ(HybridQuorumSize(2, 2), 7);
}

TEST(SizingTest, PaperWorkedExample) {
  // §4: S=2, c=1, α=0.3 ⇒ P = (2-3)/(0.9-1) = 10.
  SizingResult r = PublicCloudSizeByRatio(2, 1, 0.3);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.public_nodes, 10);
  EXPECT_EQ(r.network_size, 12);
}

TEST(SizingTest, SizedNetworkSatisfiesEquation1) {
  // The rented network must hold: N >= 3m + 2c + 1 with m = ceil-free αP.
  for (int s = 2; s <= 6; ++s) {
    for (int c = 1; 2 * c + 1 > s && c < s; ++c) {
      for (double alpha : {0.05, 0.1, 0.2, 0.3}) {
        SizingResult r = PublicCloudSizeByRatio(s, c, alpha);
        if (!r.feasible || r.public_nodes == 0) continue;
        const int m = static_cast<int>(alpha * r.public_nodes);
        EXPECT_GE(r.network_size, HybridNetworkSize(m, c))
            << "s=" << s << " c=" << c << " alpha=" << alpha;
      }
    }
  }
}

TEST(SizingTest, SelfSufficientPrivateCloud) {
  // S >= 2c+1: no rental needed, run Paxos locally.
  SizingResult r = PublicCloudSizeByRatio(5, 2, 0.3);
  EXPECT_TRUE(r.feasible);
  EXPECT_EQ(r.public_nodes, 0);
}

TEST(SizingTest, UselessPrivateCloud) {
  // S <= c: private cloud adds nothing; run BFT fully in public.
  EXPECT_FALSE(PublicCloudSizeByRatio(1, 1, 0.2).feasible);
  EXPECT_FALSE(PublicCloudSizeByRatio(2, 2, 0.2).feasible);
}

TEST(SizingTest, AlphaTooHighInfeasible) {
  // α >= 1/3: the public cloud cannot meet the Byzantine bound.
  EXPECT_FALSE(PublicCloudSizeByRatio(2, 1, 0.34).feasible);
  EXPECT_FALSE(PublicCloudSizeByRatio(2, 1, 0.5).feasible);
  // Just below 1/3 is feasible but expensive.
  SizingResult r = PublicCloudSizeByRatio(2, 1, 0.32);
  EXPECT_TRUE(r.feasible);
  EXPECT_GT(r.public_nodes, 10);
}

TEST(SizingTest, Equation3WithCrashRatio) {
  // β > 0 tightens the denominator: more nodes needed than with β = 0.
  SizingResult without = PublicCloudSizeByRatios(2, 1, 0.2, 0.0);
  SizingResult with_beta = PublicCloudSizeByRatios(2, 1, 0.2, 0.1);
  ASSERT_TRUE(without.feasible);
  ASSERT_TRUE(with_beta.feasible);
  EXPECT_GT(with_beta.public_nodes, without.public_nodes);
  // 3α + 2β >= 1 infeasible.
  EXPECT_FALSE(PublicCloudSizeByRatios(2, 1, 0.2, 0.2).feasible);
}

TEST(SizingTest, ExplicitBoundMethod) {
  // P = (3M + 2c + 1) - S.
  SizingResult r = PublicCloudSizeByBound(2, 1, 2);
  EXPECT_TRUE(r.feasible);
  EXPECT_EQ(r.public_nodes, 3 * 2 + 2 * 1 + 1 - 2);
  EXPECT_EQ(r.network_size, HybridNetworkSize(2, 1));
  // Already-sufficient private cloud: clamp at zero.
  EXPECT_EQ(PublicCloudSizeByBound(10, 1, 1).public_nodes, 0);
}

TEST(SizingTest, ExplicitBoundsWithPublicCrashes) {
  // P = (3M + 2C + 2c + 1) - S.
  SizingResult r = PublicCloudSizeByBounds(2, 1, 1, 2);
  EXPECT_TRUE(r.feasible);
  EXPECT_EQ(r.public_nodes, 3 * 1 + 2 * 2 + 2 * 1 + 1 - 2);
}

TEST(SizingTest, PaperBenchmarkTopologies) {
  // §6.1 network sizes: SeeMoRe uses 2c private + 3m+1 public.
  struct Case {
    int c, m, expected_n;
  };
  // Fig 2(a): c=m=1 -> 6; (b): c=m=2 -> 11; (c): c=1,m=3 -> 12;
  // (d): c=3,m=1 -> 10.
  for (const Case& k :
       {Case{1, 1, 6}, Case{2, 2, 11}, Case{1, 3, 12}, Case{3, 1, 10}}) {
    EXPECT_EQ(2 * k.c + 3 * k.m + 1, k.expected_n);
    EXPECT_EQ(HybridNetworkSize(k.m, k.c), k.expected_n);
  }
}

}  // namespace
}  // namespace seemore
