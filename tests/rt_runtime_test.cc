// The rt backend in-process: EventLoop timer semantics, and real TCP
// loopback between TcpTransports sharing one loop — connection
// establishment with HELLO, duplex exchange, client dialing, co-located
// local delivery, and node-down drop accounting. Each test uses its own
// base port so listeners never collide across tests.

#include <functional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "crypto/keystore.h"
#include "rt/event_loop.h"
#include "rt/tcp_transport.h"
#include "scenario/spec.h"
#include "util/time.h"

namespace seemore {
namespace rt {
namespace {

/// Drive the loop in small slices until `done` or the (real-time) budget
/// runs out. Never hangs a test run.
bool RunUntil(EventLoop* loop, const std::function<bool()>& done,
              SimTime budget = Seconds(10)) {
  const SimTime give_up = loop->Now() + budget;
  while (!done() && loop->Now() < give_up) loop->Run(Millis(10));
  return done();
}

struct RecordingHandler final : public MessageHandler {
  void OnMessage(PrincipalId from, Payload payload) override {
    froms.push_back(from);
    messages.push_back(payload.ToBytes());
  }
  std::vector<PrincipalId> froms;
  std::vector<Bytes> messages;
};

Bytes AsBytes(const char* text) {
  const auto* p = reinterpret_cast<const uint8_t*>(text);
  return Bytes(p, p + std::char_traits<char>::length(text));
}

TEST(RtEventLoop, TimersFireInDeadlineOrderAndCancel) {
  EventLoop loop;
  ASSERT_TRUE(loop.init_status().ok());

  std::vector<int> fired;
  loop.ScheduleAfter(Millis(30), [&] { fired.push_back(3); });
  loop.ScheduleAfter(Millis(10), [&] { fired.push_back(1); });
  const EventId cancelled =
      loop.ScheduleAfter(Millis(20), [&] { fired.push_back(2); });
  EXPECT_TRUE(loop.CancelEvent(cancelled));
  EXPECT_FALSE(loop.CancelEvent(cancelled)) << "double-cancel reports false";

  ASSERT_TRUE(RunUntil(&loop, [&] { return fired.size() == 2; }));
  EXPECT_EQ(fired, (std::vector<int>{1, 3}));
}

TEST(RtEventLoop, ZeroDelayTimerFiresAndClockAdvances) {
  EventLoop loop;
  ASSERT_TRUE(loop.init_status().ok());

  const SimTime before = loop.Now();
  bool fired = false;
  loop.ScheduleAfter(0, [&] { fired = true; });
  ASSERT_TRUE(RunUntil(&loop, [&] { return fired; }, Seconds(2)));
  EXPECT_GT(loop.Now(), before) << "monotonic clock must advance";
}

TEST(RtEventLoop, TimerCallbackCanReschedule) {
  EventLoop loop;
  ASSERT_TRUE(loop.init_status().ok());

  int ticks = 0;
  std::function<void()> tick = [&] {
    if (++ticks < 3) loop.ScheduleAfter(Millis(1), tick);
  };
  loop.ScheduleAfter(Millis(1), tick);
  ASSERT_TRUE(RunUntil(&loop, [&] { return ticks == 3; }, Seconds(2)));
}

TEST(RtTransport, DuplexExchangeOverRealSockets) {
  EventLoop loop;
  ASSERT_TRUE(loop.init_status().ok());

  TcpTransportOptions options;
  options.num_replicas = 2;
  options.base_port = 19140;
  options.fingerprint = 0xabcdef;

  // Two transports in one process = two "nodes" talking over loopback TCP.
  TcpTransport node0(&loop, options);
  TcpTransport node1(&loop, options);
  RecordingHandler handler0;
  RecordingHandler handler1;
  node0.Register(0, Zone::kPrivate, &handler0, /*metered=*/true);
  node1.Register(1, Zone::kPrivate, &handler1, /*metered=*/true);
  ASSERT_TRUE(node0.status().ok());
  ASSERT_TRUE(node1.status().ok());

  // Replica 1 dials replica 0; both sides HELLO.
  ASSERT_TRUE(RunUntil(&loop, [&] {
    return node0.ConnectedTo(1) && node1.ConnectedTo(0);
  })) << "cluster never became fully connected";

  node1.Send(1, 0, Payload(AsBytes("ping")));
  node0.Send(0, 1, Payload(AsBytes("pong")));
  ASSERT_TRUE(RunUntil(&loop, [&] {
    return !handler0.messages.empty() && !handler1.messages.empty();
  }));

  EXPECT_EQ(handler0.froms, (std::vector<PrincipalId>{1}));
  EXPECT_EQ(handler0.messages[0], AsBytes("ping"));
  EXPECT_EQ(handler1.froms, (std::vector<PrincipalId>{0}));
  EXPECT_EQ(handler1.messages[0], AsBytes("pong"));

  EXPECT_EQ(node1.counters().messages_sent, 1u);
  EXPECT_EQ(node0.counters().messages_received, 1u);
  EXPECT_EQ(node0.counters().dropped_no_connection, 0u);
}

TEST(RtTransport, ClientDialsEveryReplicaAndIsIdentified) {
  EventLoop loop;
  ASSERT_TRUE(loop.init_status().ok());

  TcpTransportOptions options;
  options.num_replicas = 2;
  options.base_port = 19150;
  options.fingerprint = 7;

  TcpTransport node0(&loop, options);
  TcpTransport node1(&loop, options);
  TcpTransport clients(&loop, options);  // the launcher-side transport
  RecordingHandler handler0;
  RecordingHandler handler1;
  RecordingHandler client_handler;
  node0.Register(0, Zone::kPrivate, &handler0, true);
  node1.Register(1, Zone::kPrivate, &handler1, true);
  const PrincipalId client = kClientIdBase;
  clients.Register(client, Zone::kClient, &client_handler, /*metered=*/false);

  ASSERT_TRUE(RunUntil(&loop, [&] {
    return clients.ConnectedTo(0) && clients.ConnectedTo(1);
  })) << "client never reached both replicas";

  clients.Send(client, 0, Payload(AsBytes("request")));
  ASSERT_TRUE(RunUntil(&loop, [&] { return !handler0.messages.empty(); }));
  // Pairwise authentication: the replica learns the true client id from
  // the HELLO, not from anything inside the payload.
  EXPECT_EQ(handler0.froms, (std::vector<PrincipalId>{client}));

  node0.Send(0, client, Payload(AsBytes("reply")));
  ASSERT_TRUE(
      RunUntil(&loop, [&] { return !client_handler.messages.empty(); }));
  EXPECT_EQ(client_handler.froms, (std::vector<PrincipalId>{0}));
  EXPECT_EQ(client_handler.messages[0], AsBytes("reply"));
}

TEST(RtTransport, CoLocatedPrincipalsDeliverLocallyAndRespectNodeDown) {
  EventLoop loop;
  ASSERT_TRUE(loop.init_status().ok());

  TcpTransportOptions options;
  options.num_replicas = 2;
  options.base_port = 19160;

  // Both replicas on ONE transport: Send short-circuits through the loop
  // without sockets, same delivery contract.
  TcpTransport transport(&loop, options);
  RecordingHandler handler0;
  RecordingHandler handler1;
  transport.Register(0, Zone::kPrivate, &handler0, true);
  transport.Register(1, Zone::kPrivate, &handler1, true);

  transport.Send(0, 1, Payload(AsBytes("hi")));
  ASSERT_TRUE(RunUntil(&loop, [&] { return !handler1.messages.empty(); },
                       Seconds(2)));
  EXPECT_EQ(handler1.froms, (std::vector<PrincipalId>{0}));

  // A down node's messages vanish (crashed machine's NIC) and are counted.
  transport.SetNodeUp(1, false);
  const uint64_t drops_before = transport.counters().dropped_node_down;
  transport.Send(0, 1, Payload(AsBytes("lost")));
  loop.Run(Millis(50));
  EXPECT_EQ(handler1.messages.size(), 1u);
  EXPECT_GT(transport.counters().dropped_node_down, drops_before);

  transport.SetNodeUp(1, true);
  transport.Send(0, 1, Payload(AsBytes("back")));
  ASSERT_TRUE(RunUntil(&loop, [&] { return handler1.messages.size() == 2; },
                       Seconds(2)));
  EXPECT_EQ(handler1.messages[1], AsBytes("back"));

  // Multicast skips the sender itself.
  transport.Multicast(0, {0, 1}, Payload(AsBytes("mcast")));
  ASSERT_TRUE(RunUntil(&loop, [&] { return handler1.messages.size() == 3; },
                       Seconds(2)));
  EXPECT_TRUE(handler0.messages.empty());
}

TEST(RtTransport, SendWithoutConnectionDropsSilently) {
  EventLoop loop;
  ASSERT_TRUE(loop.init_status().ok());

  TcpTransportOptions options;
  options.num_replicas = 3;
  options.base_port = 19170;

  TcpTransport node0(&loop, options);
  RecordingHandler handler0;
  node0.Register(0, Zone::kPrivate, &handler0, true);

  // Replica 2 never comes up; Send must not block, fail, or crash.
  node0.Send(0, 2, Payload(AsBytes("into the void")));
  loop.Run(Millis(20));
  EXPECT_EQ(node0.counters().dropped_no_connection, 1u);
}

TEST(RtTransport, MulticastEncodesOnceAndFansOutSharedFrames) {
  EventLoop loop;
  ASSERT_TRUE(loop.init_status().ok());

  TcpTransportOptions options;
  options.num_replicas = 3;
  options.base_port = 19180;
  options.fingerprint = 3;

  TcpTransport node0(&loop, options);
  TcpTransport node1(&loop, options);
  TcpTransport node2(&loop, options);
  RecordingHandler handler0, handler1, handler2;
  node0.Register(0, Zone::kPrivate, &handler0, true);
  node1.Register(1, Zone::kPrivate, &handler1, true);
  node2.Register(2, Zone::kPrivate, &handler2, true);

  ASSERT_TRUE(RunUntil(&loop, [&] {
    return node2.ConnectedTo(0) && node2.ConnectedTo(1);
  })) << "replica 2 never reached its peers";

  node2.Multicast(2, {0, 1, 2}, Payload(AsBytes("broadcast")));
  ASSERT_TRUE(RunUntil(&loop, [&] {
    return !handler0.messages.empty() && !handler1.messages.empty();
  }));
  EXPECT_EQ(handler0.messages[0], AsBytes("broadcast"));
  EXPECT_EQ(handler1.messages[0], AsBytes("broadcast"));
  EXPECT_TRUE(handler2.messages.empty());  // skips the sender

  // Encode-once fan-out: ONE FrameBuffer built, one enqueue per remote.
  EXPECT_EQ(node2.counters().multicast_encodes, 1u);
  EXPECT_EQ(node2.counters().multicast_enqueues, 2u);
  EXPECT_EQ(node2.counters().messages_sent, 2u);
  // The flush went through the vectored path, HELLOs included.
  EXPECT_GE(node2.counters().writev_syscalls, 1u);
  EXPECT_GE(node2.counters().frames_sent, 4u);  // 2 HELLOs + 2 multicasts
  // Receive side handed the bodies out as zero-copy views.
  EXPECT_GE(node0.counters().rx.frames_aliased, 1u);
  EXPECT_EQ(node0.counters().rx.frames_copied, 0u);
}

TEST(RtTransport, BackpressureChargesAndDropsPerPeerQueue) {
  EventLoop loop;
  ASSERT_TRUE(loop.init_status().ok());

  TcpTransportOptions options;
  options.num_replicas = 3;
  options.base_port = 19190;
  options.fingerprint = 9;
  // Cap below one big frame: HELLOs (25 wire bytes) fit, the payload
  // below cannot, so the drop is deterministic — no socket timing.
  options.max_queued_bytes = 64;

  TcpTransport node0(&loop, options);
  TcpTransport node1(&loop, options);
  TcpTransport node2(&loop, options);
  RecordingHandler handler0, handler1, handler2;
  node0.Register(0, Zone::kPrivate, &handler0, true);
  node1.Register(1, Zone::kPrivate, &handler1, true);
  node2.Register(2, Zone::kPrivate, &handler2, true);
  ASSERT_TRUE(RunUntil(&loop, [&] {
    return node2.ConnectedTo(0) && node2.ConnectedTo(1);
  }));

  // A multicast frame shared by both peer queues still charges EACH queue
  // its full wire size: both enqueues exceed the cap, both drop.
  const uint64_t drops_before = node2.counters().dropped_backpressure;
  node2.Multicast(2, {0, 1}, Payload(Bytes(200, 0xcd)));
  EXPECT_EQ(node2.counters().dropped_backpressure, drops_before + 2);

  // Small frames still flow afterwards: the drop never wedged the queue.
  node2.Send(2, 0, Payload(AsBytes("small")));
  ASSERT_TRUE(RunUntil(&loop, [&] { return !handler0.messages.empty(); }));
  EXPECT_EQ(handler0.messages[0], AsBytes("small"));
}

TEST(RtScenario, BackendFieldRoundTripsThroughJson) {
  using scenario::BackendKind;
  EXPECT_STREQ(scenario::BackendKindToken(BackendKind::kSim), "sim");
  EXPECT_STREQ(scenario::BackendKindToken(BackendKind::kTcp), "tcp");
  const auto parsed = scenario::BackendKindFromToken("tcp");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, BackendKind::kTcp);
  EXPECT_FALSE(scenario::BackendKindFromToken("udp").ok());

  scenario::ScenarioSpec spec;
  EXPECT_EQ(spec.backend, BackendKind::kSim) << "sim is the default";
  spec.backend = BackendKind::kTcp;
  const auto decoded = scenario::ScenarioSpec::FromJsonText(spec.ToJsonText());
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->backend, BackendKind::kTcp);
}

}  // namespace
}  // namespace rt
}  // namespace seemore
