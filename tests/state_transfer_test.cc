// Checkpointing and state transfer across protocols: partition + heal,
// deep lag, certificate validation against forged snapshots, and garbage
// collection bounds.

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace seemore {
namespace {

using testing::RunBurst;
using testing::SeeMoReOptions;

/// Cut one replica off from everyone, generate traffic past several
/// checkpoints, heal, and verify catch-up via snapshot transfer.
template <typename GetExecuted>
void PartitionHealCatchUp(Cluster& cluster, int victim,
                          GetExecuted executed_of) {
  for (int i = 0; i < cluster.n(); ++i) {
    if (i != victim) cluster.net().SetLinkUp(victim, i, false);
  }
  RunBurst(cluster, 4, Millis(400));
  const uint64_t cluster_progress = executed_of(0);
  ASSERT_GT(cluster_progress, 30u);
  EXPECT_LT(executed_of(victim), cluster_progress);

  for (int i = 0; i < cluster.n(); ++i) {
    if (i != victim) cluster.net().SetLinkUp(victim, i, true);
  }
  RunBurst(cluster, 4, Millis(500));
  cluster.sim().RunUntil(cluster.sim().now() + Millis(200));
  EXPECT_GT(executed_of(victim), cluster_progress);
  EXPECT_TRUE(cluster.CheckAgreement().ok());
}

TEST(StateTransferTest, LionPartitionedPublicNodeCatchesUp) {
  ClusterOptions options = SeeMoReOptions(SeeMoReMode::kLion, 1, 1);
  options.config.checkpoint_period = 8;
  Cluster cluster(options);
  PartitionHealCatchUp(cluster, /*victim=*/4, [&](int i) {
    return cluster.seemore(i)->last_executed();
  });
  EXPECT_GT(cluster.replica(4)->stats().state_transfers, 0u);
}

TEST(StateTransferTest, LionPartitionedPrivateBackupCatchesUp) {
  ClusterOptions options = SeeMoReOptions(SeeMoReMode::kLion, 1, 1);
  options.config.checkpoint_period = 8;
  Cluster cluster(options);
  PartitionHealCatchUp(cluster, /*victim=*/1, [&](int i) {
    return cluster.seemore(i)->last_executed();
  });
}

TEST(StateTransferTest, DogPassiveNodeCatchesUp) {
  ClusterOptions options = SeeMoReOptions(SeeMoReMode::kDog, 1, 1);
  options.config.checkpoint_period = 8;
  Cluster cluster(options);
  PartitionHealCatchUp(cluster, /*victim=*/1, [&](int i) {
    return cluster.seemore(i)->last_executed();
  });
}

TEST(StateTransferTest, PeacockProxyCatchesUp) {
  ClusterOptions options = SeeMoReOptions(SeeMoReMode::kPeacock, 1, 1);
  options.config.checkpoint_period = 8;
  Cluster cluster(options);
  PartitionHealCatchUp(cluster, /*victim=*/5, [&](int i) {
    return cluster.seemore(i)->last_executed();
  });
}

TEST(StateTransferTest, PbftPartitionedReplicaCatchesUp) {
  ClusterOptions options = testing::BftOptions(1);
  options.config.checkpoint_period = 8;
  Cluster cluster(options);
  PartitionHealCatchUp(cluster, /*victim=*/3, [&](int i) {
    return cluster.pbft(i)->last_executed();
  });
}

TEST(StateTransferTest, CftPartitionedReplicaCatchesUp) {
  ClusterOptions options = testing::CftOptions(1);
  options.config.checkpoint_period = 8;
  Cluster cluster(options);
  PartitionHealCatchUp(cluster, /*victim=*/2, [&](int i) {
    return cluster.paxos(i)->last_executed();
  });
}

TEST(StateTransferTest, CheckpointGarbageCollectionIsBounded) {
  // The log (slots map) must not grow without bound while checkpoints
  // advance; stable checkpoints garbage-collect everything at or below.
  ClusterOptions options = SeeMoReOptions(SeeMoReMode::kLion, 1, 1);
  options.config.checkpoint_period = 8;
  Cluster cluster(options);
  RunBurst(cluster, 4, Millis(600));
  cluster.sim().RunUntil(cluster.sim().now() + Millis(100));
  for (int i = 0; i < cluster.n(); ++i) {
    const SeeMoReReplica* replica = cluster.seemore(i);
    EXPECT_GT(replica->stable_checkpoint(), 0u);
    // Everything below the stable point was pruned; the remaining window is
    // small (in-flight + one checkpoint period).
    EXPECT_LE(replica->last_executed() - replica->stable_checkpoint(), 64u)
        << "replica " << i;
  }
}

TEST(StateTransferTest, ReplyRetentionSurvivesStateTransfer) {
  // Opt-in reply-cache retention (ClusterConfig::reply_cache_retention) is
  // consensus state: eviction keys off each entry's last-execution seq,
  // which travels inside snapshots so a replica restored from a checkpoint
  // evicts on exactly the donor's schedule. Partition + heal forces a
  // snapshot restore on the victim; afterwards any two replicas at the same
  // execution point must have byte-identical engine state, reply cache
  // included — a restored replica that guessed last_seq would diverge here.
  ClusterOptions options = SeeMoReOptions(SeeMoReMode::kLion, 1, 1);
  options.config.checkpoint_period = 8;
  options.config.reply_cache_retention = 32;
  Cluster cluster(options);
  PartitionHealCatchUp(cluster, /*victim=*/4, [&](int i) {
    return cluster.seemore(i)->last_executed();
  });
  ASSERT_GT(cluster.replica(4)->stats().state_transfers, 0u);
  for (int i = 0; i < cluster.n(); ++i) {
    // Retention bounds every cache at the clients active in the window.
    EXPECT_LE(cluster.replica(i)->exec().reply_cache_size(), 8u)
        << "replica " << i;
    for (int j = i + 1; j < cluster.n(); ++j) {
      if (cluster.seemore(i)->last_executed() !=
          cluster.seemore(j)->last_executed()) {
        continue;
      }
      EXPECT_EQ(cluster.replica(i)->exec().StateDigest(),
                cluster.replica(j)->exec().StateDigest())
          << "replicas " << i << " and " << j;
    }
  }
}

TEST(StateTransferTest, ReplyRetentionSurvivesDurableRestart) {
  // The disk path of the retention invariant above: the victim is rebuilt
  // from its own durable snapshot store (Cluster::Restart), then catches
  // up. Retention state travels inside snapshot bytes, so a replica
  // restored from disk must evict on exactly the donor's schedule too —
  // digest equality at equal frontiers would break if the restored engine
  // guessed any entry's last-execution seq.
  ClusterOptions options = SeeMoReOptions(SeeMoReMode::kLion, 1, 1);
  options.config.checkpoint_period = 8;
  options.config.reply_cache_retention = 32;
  options.durability.enabled = true;
  options.durability.fsync_interval = 1;
  Cluster cluster(options);
  RunBurst(cluster, 4, Millis(300));
  cluster.Crash(4);
  RunBurst(cluster, 4, Millis(400));
  const uint64_t progress = cluster.seemore(0)->last_executed();
  ASSERT_GT(progress, 30u);

  Result<RestartOutcome> outcome = cluster.Restart(4);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  ASSERT_GT(outcome->snapshot_seq, 0u);  // restored from a durable snapshot

  RunBurst(cluster, 4, Millis(500));
  cluster.sim().RunUntil(cluster.sim().now() + Millis(200));
  EXPECT_GT(cluster.seemore(4)->last_executed(), progress);
  for (int i = 0; i < cluster.n(); ++i) {
    EXPECT_LE(cluster.replica(i)->exec().reply_cache_size(), 8u)
        << "replica " << i;
    for (int j = i + 1; j < cluster.n(); ++j) {
      if (cluster.seemore(i)->last_executed() !=
          cluster.seemore(j)->last_executed()) {
        continue;
      }
      EXPECT_EQ(cluster.replica(i)->exec().StateDigest(),
                cluster.replica(j)->exec().StateDigest())
          << "replicas " << i << " and " << j;
    }
  }
  EXPECT_TRUE(cluster.CheckAgreement().ok());
}

TEST(StateTransferTest, ByzantineSnapshotRejected) {
  // A Byzantine public node cannot poison a recovering replica: snapshots
  // must match the digest in a valid checkpoint certificate, which needs a
  // trusted signer or a 2m+1 public quorum. Here we verify the negative
  // path directly through the certificate API.
  KeyStore store(77);
  ClusterConfig config;
  config.kind = ProtocolKind::kSeeMoRe;
  config.s = 2;
  config.p = 4;
  config.c = 1;
  config.m = 1;

  Bytes honest_snapshot = {1, 2, 3};
  Bytes forged_snapshot = {9, 9, 9};
  CheckpointMsg msg;
  msg.seq = 42;
  msg.state_digest = Digest::Of(honest_snapshot);
  msg.replica = 4;  // untrusted
  msg.Sign(Signer(4, store));
  CheckpointCert cert;
  cert.Add(msg);

  // One untrusted signer is not a certificate...
  int trusted = 0, untrusted = 0;
  for (const auto& m : cert.msgs()) {
    (config.IsTrusted(m.replica) ? trusted : untrusted) += 1;
  }
  EXPECT_EQ(trusted, 0);
  EXPECT_LT(untrusted, 2 * config.m + 1);
  // ...and even with a quorum, a forged snapshot fails the digest check.
  EXPECT_NE(Digest::Of(forged_snapshot), cert.state_digest());
}

TEST(StateTransferTest, RecoverAfterLongOutage) {
  // Crash -> multiple checkpoint periods pass -> recover: the node must
  // come back via snapshot, not by replaying a GC'd log.
  ClusterOptions options = SeeMoReOptions(SeeMoReMode::kLion, 1, 1);
  options.config.checkpoint_period = 8;
  Cluster cluster(options);
  cluster.Crash(5);
  RunBurst(cluster, 4, Millis(600));
  const uint64_t progress = cluster.seemore(0)->last_executed();
  ASSERT_GT(progress, 50u);
  cluster.Recover(5);
  RunBurst(cluster, 4, Millis(500));
  cluster.sim().RunUntil(cluster.sim().now() + Millis(200));
  EXPECT_GT(cluster.seemore(5)->last_executed(), progress);
  EXPECT_TRUE(cluster.CheckAgreement().ok());
}

}  // namespace
}  // namespace seemore
