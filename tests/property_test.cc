// Property-based sweeps (parameterized gtest): for every protocol and many
// seeds, run a randomized workload under message loss and duplication and
// check the core SMR invariants:
//   1. Agreement: no two replicas execute different batches at one seq.
//   2. Progress: clients complete requests (liveness under partial synchrony).
//   3. Durability: a value acknowledged to a client is readable afterwards.

#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "tests/test_util.h"

namespace seemore {
namespace {

using testing::BftOptions;
using testing::CftOptions;
using testing::SeeMoReOptions;
using testing::SubmitAndWait;
using testing::SUpRightOptions;

struct ProtocolCase {
  const char* name;
  ProtocolKind kind;
  SeeMoReMode mode;  // only used for SeeMoRe
};

ClusterOptions MakeOptions(const ProtocolCase& pc, uint64_t seed) {
  switch (pc.kind) {
    case ProtocolKind::kCft:
      return CftOptions(1, seed);
    case ProtocolKind::kBft:
      return BftOptions(1, seed);
    case ProtocolKind::kSUpRight:
      return SUpRightOptions(1, 1, seed);
    case ProtocolKind::kSeeMoRe:
      return SeeMoReOptions(pc.mode, 1, 1, seed);
  }
  return CftOptions(1, seed);
}

class ProtocolPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, uint64_t>> {
 protected:
  static constexpr ProtocolCase kCases[] = {
      {"CFT", ProtocolKind::kCft, SeeMoReMode::kLion},
      {"BFT", ProtocolKind::kBft, SeeMoReMode::kLion},
      {"S-UpRight", ProtocolKind::kSUpRight, SeeMoReMode::kLion},
      {"SeeMoRe-Lion", ProtocolKind::kSeeMoRe, SeeMoReMode::kLion},
      {"SeeMoRe-Dog", ProtocolKind::kSeeMoRe, SeeMoReMode::kDog},
      {"SeeMoRe-Peacock", ProtocolKind::kSeeMoRe, SeeMoReMode::kPeacock},
  };

  const ProtocolCase& Case() const { return kCases[std::get<0>(GetParam())]; }
  uint64_t Seed() const { return std::get<1>(GetParam()); }
};

constexpr ProtocolCase ProtocolPropertyTest::kCases[];

TEST_P(ProtocolPropertyTest, AgreementAndProgressUnderLossyNetwork) {
  ClusterOptions options = MakeOptions(Case(), Seed());
  options.net.drop_probability = 0.02;
  options.net.duplicate_probability = 0.01;
  Cluster cluster(options);

  const uint64_t completed =
      testing::RunBurst(cluster, 4, Millis(300), /*seed=*/Seed() * 31 + 7);
  cluster.sim().RunUntil(cluster.sim().now() + Millis(200));

  EXPECT_GT(completed, 10u) << Case().name << " seed=" << Seed();
  Status agreement = cluster.CheckAgreement();
  EXPECT_TRUE(agreement.ok())
      << Case().name << " seed=" << Seed() << ": " << agreement.ToString();
}

TEST_P(ProtocolPropertyTest, AcknowledgedWritesAreDurableAcrossPrimaryCrash) {
  ClusterOptions options = MakeOptions(Case(), Seed());
  Cluster cluster(options);
  SimClient* client = cluster.AddClient();

  auto put = SubmitAndWait(cluster, client, MakePut("durable", "yes"));
  ASSERT_TRUE(put.ok()) << Case().name << ": " << put.status().ToString();

  // Crash the current primary/leader, whatever node that is.
  PrincipalId primary = 0;
  if (Case().kind == ProtocolKind::kSeeMoRe) {
    primary = cluster.seemore(0)->current_primary();
  }
  cluster.Crash(static_cast<int>(primary));

  auto get = SubmitAndWait(cluster, client, MakeGet("durable"), Seconds(10));
  ASSERT_TRUE(get.ok()) << Case().name << " seed=" << Seed() << ": "
                        << get.status().ToString();
  EXPECT_EQ(ParseKvReply(*get).value, "yes") << Case().name;
  EXPECT_TRUE(cluster.CheckAgreement().ok()) << Case().name;
}

TEST_P(ProtocolPropertyTest, DeterministicGivenSeed) {
  auto run_once = [this] {
    ClusterOptions options = MakeOptions(Case(), Seed());
    Cluster cluster(options);
    testing::RunBurst(cluster, 3, Millis(150), /*seed=*/99);
    uint64_t fingerprint = 0;
    for (int i = 0; i < cluster.n(); ++i) {
      fingerprint = fingerprint * 1000003 +
                    cluster.replica(i)->exec().last_executed();
    }
    return fingerprint;
  };
  EXPECT_EQ(run_once(), run_once()) << Case().name << " seed=" << Seed();
}

std::string CaseName(
    const ::testing::TestParamInfo<std::tuple<int, uint64_t>>& info) {
  static constexpr const char* kNames[] = {"CFT",  "BFT", "SUpRight",
                                           "Lion", "Dog", "Peacock"};
  return std::string(kNames[std::get<0>(info.param)]) + "_seed" +
         std::to_string(std::get<1>(info.param));
}

INSTANTIATE_TEST_SUITE_P(AllProtocolsManySeeds, ProtocolPropertyTest,
                         ::testing::Combine(::testing::Range(0, 6),
                                            ::testing::Values(1u, 2u, 3u)),
                         CaseName);

}  // namespace
}  // namespace seemore
