// Property-based sweeps (parameterized gtest): for every protocol and many
// seeds, run a randomized workload under message loss and duplication and
// check the core SMR invariants:
//   1. Agreement: no two replicas execute different batches at one seq.
//   2. Progress: clients complete requests (liveness under partial synchrony).
//   3. Durability: a value acknowledged to a client is readable afterwards.

#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "tests/test_util.h"

namespace seemore {
namespace {

using testing::BftOptions;
using testing::CftOptions;
using testing::SeeMoReOptions;
using testing::SubmitAndWait;
using testing::SUpRightOptions;

struct ProtocolCase {
  const char* name;
  ProtocolKind kind;
  SeeMoReMode mode;  // only used for SeeMoRe
};

ClusterOptions MakeOptions(const ProtocolCase& pc, uint64_t seed) {
  switch (pc.kind) {
    case ProtocolKind::kCft:
      return CftOptions(1, seed);
    case ProtocolKind::kBft:
      return BftOptions(1, seed);
    case ProtocolKind::kSUpRight:
      return SUpRightOptions(1, 1, seed);
    case ProtocolKind::kSeeMoRe:
      return SeeMoReOptions(pc.mode, 1, 1, seed);
  }
  return CftOptions(1, seed);
}

class ProtocolPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, uint64_t>> {
 protected:
  static constexpr ProtocolCase kCases[] = {
      {"CFT", ProtocolKind::kCft, SeeMoReMode::kLion},
      {"BFT", ProtocolKind::kBft, SeeMoReMode::kLion},
      {"S-UpRight", ProtocolKind::kSUpRight, SeeMoReMode::kLion},
      {"SeeMoRe-Lion", ProtocolKind::kSeeMoRe, SeeMoReMode::kLion},
      {"SeeMoRe-Dog", ProtocolKind::kSeeMoRe, SeeMoReMode::kDog},
      {"SeeMoRe-Peacock", ProtocolKind::kSeeMoRe, SeeMoReMode::kPeacock},
  };

  const ProtocolCase& Case() const { return kCases[std::get<0>(GetParam())]; }
  uint64_t Seed() const { return std::get<1>(GetParam()); }
};

constexpr ProtocolCase ProtocolPropertyTest::kCases[];

TEST_P(ProtocolPropertyTest, AgreementAndProgressUnderLossyNetwork) {
  ClusterOptions options = MakeOptions(Case(), Seed());
  options.net.drop_probability = 0.02;
  options.net.duplicate_probability = 0.01;
  Cluster cluster(options);

  const uint64_t completed =
      testing::RunBurst(cluster, 4, Millis(300), /*seed=*/Seed() * 31 + 7);
  cluster.sim().RunUntil(cluster.sim().now() + Millis(200));

  EXPECT_GT(completed, 10u) << Case().name << " seed=" << Seed();
  Status agreement = cluster.CheckAgreement();
  EXPECT_TRUE(agreement.ok())
      << Case().name << " seed=" << Seed() << ": " << agreement.ToString();
}

TEST_P(ProtocolPropertyTest, AcknowledgedWritesAreDurableAcrossPrimaryCrash) {
  ClusterOptions options = MakeOptions(Case(), Seed());
  Cluster cluster(options);
  SimClient* client = cluster.AddClient();

  auto put = SubmitAndWait(cluster, client, MakePut("durable", "yes"));
  ASSERT_TRUE(put.ok()) << Case().name << ": " << put.status().ToString();

  // Crash the current primary/leader, whatever node that is.
  PrincipalId primary = 0;
  if (Case().kind == ProtocolKind::kSeeMoRe) {
    primary = cluster.seemore(0)->current_primary();
  }
  cluster.Crash(static_cast<int>(primary));

  auto get = SubmitAndWait(cluster, client, MakeGet("durable"), Seconds(10));
  ASSERT_TRUE(get.ok()) << Case().name << " seed=" << Seed() << ": "
                        << get.status().ToString();
  EXPECT_EQ(ParseKvReply(*get).value, "yes") << Case().name;
  EXPECT_TRUE(cluster.CheckAgreement().ok()) << Case().name;
}

TEST_P(ProtocolPropertyTest, InstanceLogOccupancyBoundedUnderSustainedLoad) {
  // Checkpointing must reclaim slots below the stable checkpoint: under
  // sustained load the live instance-log occupancy stays within a small
  // multiple of the agreement window instead of growing with total commits.
  ClusterOptions options = MakeOptions(Case(), Seed());
  Cluster cluster(options);

  const size_t window =
      static_cast<size_t>(options.config.checkpoint_period) * 2 +
      static_cast<size_t>(options.config.pipeline_max);
  const size_t bound = 2 * window;

  auto occupancy = [&](int i) -> size_t {
    switch (Case().kind) {
      case ProtocolKind::kCft:
        return cluster.paxos(i)->log_occupancy();
      case ProtocolKind::kBft:
      case ProtocolKind::kSUpRight:
        return cluster.pbft(i)->log_occupancy();
      case ProtocolKind::kSeeMoRe:
        return cluster.seemore(i)->log_occupancy();
    }
    return 0;
  };

  OpFactory ops = KvWorkload(Seed() * 13 + 1, 64, 0.5);
  for (int i = 0; i < 4; ++i) cluster.AddClient();
  for (int i = 0; i < cluster.num_clients(); ++i) cluster.client(i)->Start(ops);
  size_t max_occupancy = 0;
  const SimTime until = Millis(400);
  while (cluster.sim().now() < until && cluster.sim().Step()) {
    for (int i = 0; i < cluster.n(); ++i) {
      max_occupancy = std::max(max_occupancy, occupancy(i));
    }
  }
  for (int i = 0; i < cluster.num_clients(); ++i) cluster.client(i)->Stop();
  cluster.sim().RunUntil(until + Millis(100));

  EXPECT_LE(max_occupancy, bound)
      << Case().name << " seed=" << Seed()
      << ": instance log grew past the agreement window";
  // The run must actually cross checkpoints, or the bound proves nothing.
  uint64_t stable = 0;
  switch (Case().kind) {
    case ProtocolKind::kCft:
      stable = cluster.paxos(0)->stable_checkpoint();
      break;
    case ProtocolKind::kBft:
    case ProtocolKind::kSUpRight:
      stable = cluster.pbft(0)->stable_checkpoint();
      break;
    case ProtocolKind::kSeeMoRe:
      stable = cluster.seemore(0)->stable_checkpoint();
      break;
  }
  EXPECT_GT(stable, 0u) << Case().name
                        << ": no checkpoint ever became stable";
}

TEST_P(ProtocolPropertyTest, DeterministicGivenSeed) {
  auto run_once = [this] {
    ClusterOptions options = MakeOptions(Case(), Seed());
    Cluster cluster(options);
    testing::RunBurst(cluster, 3, Millis(150), /*seed=*/99);
    uint64_t fingerprint = 0;
    for (int i = 0; i < cluster.n(); ++i) {
      fingerprint = fingerprint * 1000003 +
                    cluster.replica(i)->exec().last_executed();
    }
    return fingerprint;
  };
  EXPECT_EQ(run_once(), run_once()) << Case().name << " seed=" << Seed();
}

std::string CaseName(
    const ::testing::TestParamInfo<std::tuple<int, uint64_t>>& info) {
  static constexpr const char* kNames[] = {"CFT",  "BFT", "SUpRight",
                                           "Lion", "Dog", "Peacock"};
  return std::string(kNames[std::get<0>(info.param)]) + "_seed" +
         std::to_string(std::get<1>(info.param));
}

INSTANTIATE_TEST_SUITE_P(AllProtocolsManySeeds, ProtocolPropertyTest,
                         ::testing::Combine(::testing::Range(0, 6),
                                            ::testing::Values(1u, 2u, 3u)),
                         CaseName);

}  // namespace
}  // namespace seemore
