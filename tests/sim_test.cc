// Discrete-event simulator: ordering, determinism, cancellation, CPU queue.

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <memory>
#include <vector>

#include "net/network.h"
#include "sim/simulator.h"

namespace seemore {
namespace {

TEST(SimulatorTest, EventsFireInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.Schedule(Millis(30), [&] { order.push_back(3); });
  sim.Schedule(Millis(10), [&] { order.push_back(1); });
  sim.Schedule(Millis(20), [&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), Millis(30));
}

TEST(SimulatorTest, TiesBreakByInsertionOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.Schedule(Millis(5), [&order, i] { order.push_back(i); });
  }
  sim.Run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(SimulatorTest, CancelPreventsFiring) {
  Simulator sim;
  bool fired = false;
  EventId id = sim.Schedule(Millis(1), [&] { fired = true; });
  EXPECT_TRUE(sim.Cancel(id));
  EXPECT_FALSE(sim.Cancel(id));  // second cancel fails
  sim.Run();
  EXPECT_FALSE(fired);
}

TEST(SimulatorTest, RunUntilStopsAtDeadline) {
  Simulator sim;
  int count = 0;
  sim.Schedule(Millis(5), [&] { ++count; });
  sim.Schedule(Millis(15), [&] { ++count; });
  sim.RunUntil(Millis(10));
  EXPECT_EQ(count, 1);
  EXPECT_EQ(sim.now(), Millis(10));
  sim.RunUntil(Millis(20));
  EXPECT_EQ(count, 2);
}

TEST(SimulatorTest, NestedScheduling) {
  Simulator sim;
  std::vector<SimTime> times;
  sim.Schedule(Millis(1), [&] {
    times.push_back(sim.now());
    sim.Schedule(Millis(1), [&] { times.push_back(sim.now()); });
  });
  sim.Run();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_EQ(times[0], Millis(1));
  EXPECT_EQ(times[1], Millis(2));
}

TEST(SimulatorTest, StepRunsOneEvent) {
  Simulator sim;
  int count = 0;
  sim.Schedule(1, [&] { ++count; });
  sim.Schedule(2, [&] { ++count; });
  EXPECT_TRUE(sim.Step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(sim.Step());
  EXPECT_EQ(count, 2);
  EXPECT_FALSE(sim.Step());
}

TEST(SimulatorTest, DeterministicAcrossRuns) {
  auto run = [](uint64_t seed) {
    Simulator sim(seed);
    uint64_t trace = 0;
    for (int i = 0; i < 100; ++i) {
      SimTime delay = static_cast<SimTime>(sim.rng().NextBounded(1000));
      sim.Schedule(delay, [&trace, i] { trace = trace * 31 + i; });
    }
    sim.Run();
    return trace;
  };
  EXPECT_EQ(run(5), run(5));
  EXPECT_NE(run(5), run(6));
}

TEST(SimulatorTest, EventIdsAreNeverZeroAndNeverRevived) {
  Simulator sim;
  EventId first = sim.Schedule(Millis(1), [] {});
  EXPECT_NE(first, 0u);
  EXPECT_TRUE(sim.Cancel(first));
  // The freed slot is reused by the next event; the old handle must stay
  // dead (generation check) and the new one must be distinct and live.
  EventId second = sim.Schedule(Millis(2), [] {});
  EXPECT_NE(second, 0u);
  EXPECT_NE(second, first);
  EXPECT_FALSE(sim.Cancel(first));
  EXPECT_TRUE(sim.Cancel(second));
}

TEST(SimulatorTest, CancelReleasesCallbackStateImmediately) {
  // Regression: the seed engine kept cancelled callbacks (and anything they
  // captured — payload buffers, replica state) alive until the heap entry
  // drained, which could be arbitrarily late.
  Simulator sim;
  auto token = std::make_shared<int>(7);
  std::weak_ptr<int> watch = token;
  EventId id = sim.Schedule(Seconds(3600), [token] { (void)*token; });
  token.reset();
  EXPECT_FALSE(watch.expired());  // captured by the pending event
  EXPECT_TRUE(sim.Cancel(id));
  EXPECT_TRUE(watch.expired());  // freed at cancel time, not at pop time
}

TEST(SimulatorTest, ScheduleCancelChurnKeepsQueueBounded) {
  // Regression for the cancelled-timer leak: a long run that keeps arming
  // and cancelling timers (the view-change pattern) must not grow the event
  // queue unboundedly. The seed engine left every cancelled entry in the
  // priority queue until its (possibly far-future) deadline drained it.
  Simulator sim;
  bool stop = false;
  std::function<void()> tick = [&] {
    if (stop) return;
    // Arm a far-future "view change" timer and immediately cancel it, as a
    // replica does on every committed batch.
    EventId timer = sim.Schedule(Seconds(3600), [] {});
    EXPECT_TRUE(sim.Cancel(timer));
    sim.Schedule(Micros(10), tick);
  };
  sim.Schedule(0, tick);
  size_t max_queued = 0;
  size_t max_slab = 0;
  for (int i = 0; i < 200000 && !stop; ++i) {
    if (!sim.Step()) break;
    max_queued = std::max(max_queued, sim.queued_entries());
    max_slab = std::max(max_slab, sim.slab_size());
    if (i == 199999) stop = true;
  }
  stop = true;
  sim.Run();
  // O(live events + compaction slack), nowhere near the ~100k cancellations.
  EXPECT_LE(max_queued, 200u);
  EXPECT_LE(max_slab, 200u);
  EXPECT_EQ(sim.pending_events(), 0u);
  EXPECT_EQ(sim.queued_entries(), 0u);
}

TEST(SimulatorTest, PendingEventsTracksLiveEventsUnderChurn) {
  Simulator sim;
  std::vector<EventId> live;
  for (int i = 0; i < 100; ++i) {
    live.push_back(sim.Schedule(Millis(1 + i), [] {}));
  }
  EXPECT_EQ(sim.pending_events(), 100u);
  for (int i = 0; i < 100; i += 2) EXPECT_TRUE(sim.Cancel(live[i]));
  EXPECT_EQ(sim.pending_events(), 50u);
  sim.Run();
  EXPECT_EQ(sim.pending_events(), 0u);
  EXPECT_EQ(sim.executed_events(), 50u);
}

TEST(NodeCpuTest, SerializesTasks) {
  Simulator sim;
  NodeCpu cpu(&sim);
  std::vector<SimTime> starts;
  // Two tasks submitted at t=0, each charging 10us: the second must start
  // at t=10us.
  cpu.Submit([&] {
    starts.push_back(sim.now());
    cpu.Charge(Micros(10));
  });
  cpu.Submit([&] {
    starts.push_back(sim.now());
    cpu.Charge(Micros(10));
  });
  sim.Run();
  ASSERT_EQ(starts.size(), 2u);
  EXPECT_EQ(starts[0], 0);
  EXPECT_EQ(starts[1], Micros(10));
  EXPECT_EQ(cpu.total_busy(), Micros(20));
}

TEST(NodeCpuTest, IdleCpuRunsImmediately) {
  Simulator sim;
  NodeCpu cpu(&sim);
  SimTime ran_at = -1;
  sim.Schedule(Millis(5), [&] {
    cpu.Submit([&] { ran_at = sim.now(); });
  });
  sim.Run();
  EXPECT_EQ(ran_at, Millis(5));
}

TEST(NodeCpuTest, AvailableAtTracksBacklog) {
  Simulator sim;
  NodeCpu cpu(&sim);
  cpu.Submit([&] { cpu.Charge(Micros(100)); });
  sim.Run();
  EXPECT_EQ(cpu.AvailableAt(), Micros(100));
}

}  // namespace
}  // namespace seemore
