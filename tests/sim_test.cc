// Discrete-event simulator: ordering, determinism, cancellation, CPU queue.

#include <gtest/gtest.h>

#include <vector>

#include "net/network.h"
#include "sim/simulator.h"

namespace seemore {
namespace {

TEST(SimulatorTest, EventsFireInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.Schedule(Millis(30), [&] { order.push_back(3); });
  sim.Schedule(Millis(10), [&] { order.push_back(1); });
  sim.Schedule(Millis(20), [&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), Millis(30));
}

TEST(SimulatorTest, TiesBreakByInsertionOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.Schedule(Millis(5), [&order, i] { order.push_back(i); });
  }
  sim.Run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(SimulatorTest, CancelPreventsFiring) {
  Simulator sim;
  bool fired = false;
  EventId id = sim.Schedule(Millis(1), [&] { fired = true; });
  EXPECT_TRUE(sim.Cancel(id));
  EXPECT_FALSE(sim.Cancel(id));  // second cancel fails
  sim.Run();
  EXPECT_FALSE(fired);
}

TEST(SimulatorTest, RunUntilStopsAtDeadline) {
  Simulator sim;
  int count = 0;
  sim.Schedule(Millis(5), [&] { ++count; });
  sim.Schedule(Millis(15), [&] { ++count; });
  sim.RunUntil(Millis(10));
  EXPECT_EQ(count, 1);
  EXPECT_EQ(sim.now(), Millis(10));
  sim.RunUntil(Millis(20));
  EXPECT_EQ(count, 2);
}

TEST(SimulatorTest, NestedScheduling) {
  Simulator sim;
  std::vector<SimTime> times;
  sim.Schedule(Millis(1), [&] {
    times.push_back(sim.now());
    sim.Schedule(Millis(1), [&] { times.push_back(sim.now()); });
  });
  sim.Run();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_EQ(times[0], Millis(1));
  EXPECT_EQ(times[1], Millis(2));
}

TEST(SimulatorTest, StepRunsOneEvent) {
  Simulator sim;
  int count = 0;
  sim.Schedule(1, [&] { ++count; });
  sim.Schedule(2, [&] { ++count; });
  EXPECT_TRUE(sim.Step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(sim.Step());
  EXPECT_EQ(count, 2);
  EXPECT_FALSE(sim.Step());
}

TEST(SimulatorTest, DeterministicAcrossRuns) {
  auto run = [](uint64_t seed) {
    Simulator sim(seed);
    uint64_t trace = 0;
    for (int i = 0; i < 100; ++i) {
      SimTime delay = static_cast<SimTime>(sim.rng().NextBounded(1000));
      sim.Schedule(delay, [&trace, i] { trace = trace * 31 + i; });
    }
    sim.Run();
    return trace;
  };
  EXPECT_EQ(run(5), run(5));
  EXPECT_NE(run(5), run(6));
}

TEST(NodeCpuTest, SerializesTasks) {
  Simulator sim;
  NodeCpu cpu(&sim);
  std::vector<SimTime> starts;
  // Two tasks submitted at t=0, each charging 10us: the second must start
  // at t=10us.
  cpu.Submit([&] {
    starts.push_back(sim.now());
    cpu.Charge(Micros(10));
  });
  cpu.Submit([&] {
    starts.push_back(sim.now());
    cpu.Charge(Micros(10));
  });
  sim.Run();
  ASSERT_EQ(starts.size(), 2u);
  EXPECT_EQ(starts[0], 0);
  EXPECT_EQ(starts[1], Micros(10));
  EXPECT_EQ(cpu.total_busy(), Micros(20));
}

TEST(NodeCpuTest, IdleCpuRunsImmediately) {
  Simulator sim;
  NodeCpu cpu(&sim);
  SimTime ran_at = -1;
  sim.Schedule(Millis(5), [&] {
    cpu.Submit([&] { ran_at = sim.now(); });
  });
  sim.Run();
  EXPECT_EQ(ran_at, Millis(5));
}

TEST(NodeCpuTest, AvailableAtTracksBacklog) {
  Simulator sim;
  NodeCpu cpu(&sim);
  cpu.Submit([&] { cpu.Charge(Micros(100)); });
  sim.Run();
  EXPECT_EQ(cpu.AvailableAt(), Micros(100));
}

}  // namespace
}  // namespace seemore
