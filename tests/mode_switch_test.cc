// Dynamic mode switching (§5.4): MODE-CHANGE + view change into the new
// mode, preservation of committed state, authority checks, full cycles.

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace seemore {
namespace {

using testing::RunBurst;
using testing::SeeMoReOptions;
using testing::SubmitAndWait;

/// Switch the cluster's mode and wait until every live replica adopted it.
void SwitchModeAndSettle(Cluster& cluster, SeeMoReMode target) {
  // Find the trusted authority for view v+1 under the target mode.
  SeeMoReReplica* any = cluster.seemore(0);
  const uint64_t next_view = any->view() + 1;
  const PrincipalId authority = any->SwitchAuthority(target, next_view);
  ASSERT_TRUE(cluster.config().IsTrusted(authority));
  Status status = cluster.seemore(authority)->RequestModeSwitch(target);
  ASSERT_TRUE(status.ok()) << status.ToString();
  cluster.sim().RunUntil(cluster.sim().now() + Millis(500));
}

TEST(ModeSwitchTest, LionToDog) {
  Cluster cluster(SeeMoReOptions(SeeMoReMode::kLion, 1, 1));
  SimClient* client = cluster.AddClient();
  ASSERT_TRUE(SubmitAndWait(cluster, client, MakePut("a", "1")).ok());

  SwitchModeAndSettle(cluster, SeeMoReMode::kDog);
  for (int i = 0; i < cluster.n(); ++i) {
    EXPECT_EQ(cluster.seemore(i)->mode(), SeeMoReMode::kDog) << "replica " << i;
  }

  // Data written in Lion survives; new writes commit in Dog.
  auto get = SubmitAndWait(cluster, client, MakeGet("a"), Seconds(10));
  ASSERT_TRUE(get.ok()) << get.status().ToString();
  EXPECT_EQ(ParseKvReply(*get).value, "1");
  ASSERT_TRUE(SubmitAndWait(cluster, client, MakePut("b", "2")).ok());
  EXPECT_TRUE(cluster.CheckAgreement().ok());
}

TEST(ModeSwitchTest, LionToPeacock) {
  Cluster cluster(SeeMoReOptions(SeeMoReMode::kLion, 1, 1));
  SimClient* client = cluster.AddClient();
  ASSERT_TRUE(SubmitAndWait(cluster, client, MakePut("a", "1")).ok());

  SwitchModeAndSettle(cluster, SeeMoReMode::kPeacock);
  EXPECT_EQ(cluster.seemore(2)->mode(), SeeMoReMode::kPeacock);
  EXPECT_FALSE(
      cluster.config().IsTrusted(cluster.seemore(2)->current_primary()));

  auto get = SubmitAndWait(cluster, client, MakeGet("a"), Seconds(10));
  ASSERT_TRUE(get.ok()) << get.status().ToString();
  EXPECT_EQ(ParseKvReply(*get).value, "1");
  EXPECT_TRUE(cluster.CheckAgreement().ok());
}

TEST(ModeSwitchTest, FullCycleLionDogPeacockLion) {
  Cluster cluster(SeeMoReOptions(SeeMoReMode::kLion, 1, 1));
  SimClient* client = cluster.AddClient();
  int key = 0;
  auto write_and_verify = [&](const std::string& tag) {
    const std::string k = "key" + std::to_string(key++);
    auto put = SubmitAndWait(cluster, client, MakePut(k, tag), Seconds(10));
    ASSERT_TRUE(put.ok()) << tag << ": " << put.status().ToString();
    auto get = SubmitAndWait(cluster, client, MakeGet(k), Seconds(10));
    ASSERT_TRUE(get.ok());
    EXPECT_EQ(ParseKvReply(*get).value, tag);
  };

  write_and_verify("in-lion");
  SwitchModeAndSettle(cluster, SeeMoReMode::kDog);
  write_and_verify("in-dog");
  SwitchModeAndSettle(cluster, SeeMoReMode::kPeacock);
  write_and_verify("in-peacock");
  SwitchModeAndSettle(cluster, SeeMoReMode::kLion);
  write_and_verify("back-in-lion");

  EXPECT_EQ(cluster.seemore(0)->mode(), SeeMoReMode::kLion);
  EXPECT_TRUE(cluster.CheckAgreement().ok());
}

TEST(ModeSwitchTest, SwitchUnderLoad) {
  Cluster cluster(SeeMoReOptions(SeeMoReMode::kLion, 1, 1));
  // Drive traffic continuously across the switch.
  for (int i = 0; i < 4; ++i) cluster.AddClient();
  for (int i = 0; i < 4; ++i) {
    cluster.client(i)->Start(KvWorkload(100 + i, 32, 0.5));
  }
  cluster.sim().RunUntil(Millis(100));

  SeeMoReReplica* any = cluster.seemore(0);
  const uint64_t next_view = any->view() + 1;
  const PrincipalId authority =
      any->SwitchAuthority(SeeMoReMode::kDog, next_view);
  ASSERT_TRUE(
      cluster.seemore(authority)->RequestModeSwitch(SeeMoReMode::kDog).ok());

  cluster.sim().RunUntil(Millis(600));
  for (int i = 0; i < 4; ++i) cluster.client(i)->Stop();
  cluster.sim().RunUntil(Millis(1200));

  EXPECT_EQ(cluster.seemore(2)->mode(), SeeMoReMode::kDog);
  EXPECT_TRUE(cluster.CheckAgreement().ok());
  // Clients kept completing requests across the switch.
  uint64_t total = 0;
  for (int i = 0; i < 4; ++i) total += cluster.client(i)->completed();
  EXPECT_GT(total, 100u);
}

TEST(ModeSwitchTest, RejectsWrongAuthority) {
  Cluster cluster(SeeMoReOptions(SeeMoReMode::kLion, 1, 1));
  // View 0 -> next view 1; authority for Dog is TrustedPrimary(1) = 1.
  // Replica 0 is NOT the authority.
  Status status = cluster.seemore(0)->RequestModeSwitch(SeeMoReMode::kDog);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
  // Switching to the current mode is rejected too.
  EXPECT_FALSE(cluster.seemore(1)->RequestModeSwitch(SeeMoReMode::kLion).ok());
}

TEST(ModeSwitchTest, DogToLionKeepsPassiveNodesConsistent) {
  Cluster cluster(SeeMoReOptions(SeeMoReMode::kDog, 1, 1));
  SimClient* client = cluster.AddClient();
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(
        SubmitAndWait(cluster, client, MakePut("k" + std::to_string(i), "v"))
            .ok());
  }
  SwitchModeAndSettle(cluster, SeeMoReMode::kLion);
  ASSERT_TRUE(SubmitAndWait(cluster, client, MakePut("after", "w")).ok());
  cluster.sim().RunUntil(cluster.sim().now() + Millis(100));
  EXPECT_TRUE(cluster.CheckAgreement().ok());
  for (int i = 0; i < cluster.n(); ++i) {
    EXPECT_EQ(cluster.seemore(i)->mode(), SeeMoReMode::kLion);
  }
}

}  // namespace
}  // namespace seemore
