// The parallel scenario engine's two contracts:
//
//  1. ThreadPool (util/thread_pool.h): fixed worker count, FIFO dispatch
//     order, exception propagation through the returned futures, and a
//     jobs=1 degenerate case that behaves exactly like a serial loop.
//
//  2. RunMany / RunSweep (scenario/engine.h): a parallel batch's reports
//     are BIT-IDENTICAL to serial execution of the same specs — compared
//     through ScenarioReport::DeterministicJson, the full serialized
//     report with only host wall time stripped. This is the determinism
//     promise that makes --jobs safe to default on everywhere: each run
//     owns its whole world (simulator, network, keystore, CryptoMemo) and
//     sweep-point seeds are a pure function of the spec.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <future>
#include <stdexcept>
#include <string>
#include <vector>

#include "scenario/engine.h"
#include "scenario/registry.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace seemore {
namespace {

using scenario::RunMany;
using scenario::RunScenario;
using scenario::RunSweep;
using scenario::ScenarioReport;
using scenario::ScenarioSpec;

// ---------------------------------------------------------------------------
// ThreadPool
// ---------------------------------------------------------------------------

TEST(ThreadPoolTest, SingleWorkerRunsTasksInSubmissionOrder) {
  // With one worker the FIFO queue forces strict submission order — the
  // jobs=1 degenerate case is serial execution.
  ThreadPool pool(1);
  std::vector<int> order;
  std::vector<std::future<void>> done;
  for (int i = 0; i < 32; ++i) {
    done.push_back(pool.Submit([&order, i] { order.push_back(i); }));
  }
  for (auto& f : done) f.get();
  ASSERT_EQ(order.size(), 32u);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(ThreadPoolTest, RunsEveryTaskAcrossWorkers) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4);
  std::atomic<int> ran{0};
  std::vector<std::future<void>> done;
  for (int i = 0; i < 100; ++i) {
    done.push_back(pool.Submit([&ran] { ran.fetch_add(1); }));
  }
  for (auto& f : done) f.get();
  EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPoolTest, ExceptionsPropagateThroughTheFuture) {
  ThreadPool pool(2);
  std::future<void> bad =
      pool.Submit([] { throw std::runtime_error("task failed"); });
  std::future<void> good = pool.Submit([] {});
  EXPECT_THROW(bad.get(), std::runtime_error);
  // One task's failure never poisons the pool.
  good.get();
  std::future<void> after = pool.Submit([] {});
  after.get();
}

TEST(ThreadPoolTest, ClampsToAtLeastOneWorkerAndSaneDefault) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1);
  std::future<void> f = pool.Submit([] {});
  f.get();
  EXPECT_GE(ThreadPool::DefaultJobs(), 1);
}

// ---------------------------------------------------------------------------
// RunMany / RunSweep determinism
// ---------------------------------------------------------------------------

/// A registry scenario shrunk to the shared smoke budgets
/// (scenario::ApplyQuickBudgets — the same regime `seemore_ctl
/// --quick`/`--smoke` and CI run, small enough for a test, large enough
/// that every registry scenario still passes its own invariants). The
/// identical shrink applies to the serial and parallel arms, so the
/// comparison is meaningful AND fast.
ScenarioSpec QuickRegistrySpec(const std::string& name) {
  Result<ScenarioSpec> spec = scenario::FindScenario(name);
  // Abort with the status rather than dereferencing a failed Result (a
  // renamed registry entry should fail readably, not crash the binary).
  SEEMORE_CHECK(spec.ok()) << spec.status().ToString();
  scenario::ApplyQuickBudgets(*spec);
  return *std::move(spec);
}

std::string Dump(const ScenarioReport& report) {
  return report.DeterministicJson().Dump(2);
}

TEST(ParallelSweepTest, RunManyMatchesSerialRunScenarioBitForBit) {
  // The fig2a systems exercise every protocol family; view-change-stress
  // adds crashes, recoveries and checkpoint catch-up under load.
  const std::vector<std::string> names = {
      "fig2a-lion", "fig2a-dog",       "fig2a-peacock",
      "fig2a-bft",  "fig2a-s-upright", "fig2a-cft",
      "view-change-stress"};
  std::vector<ScenarioSpec> specs;
  for (const std::string& name : names) {
    specs.push_back(QuickRegistrySpec(name));
  }

  // Serial reference: plain RunScenario, one after another.
  std::vector<std::string> want;
  for (const ScenarioSpec& spec : specs) {
    Result<ScenarioReport> report = RunScenario(spec);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_TRUE(report->ok()) << spec.name;
    want.push_back(Dump(*report));
  }

  // Parallel: the same specs through RunMany on 4 workers.
  Result<std::vector<ScenarioReport>> parallel = RunMany(specs, 4);
  ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
  ASSERT_EQ(parallel->size(), specs.size());
  for (size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(Dump((*parallel)[i]), want[i]) << names[i];
  }

  // And the degenerate case: RunMany with jobs=1 (no threads at all).
  Result<std::vector<ScenarioReport>> serial = RunMany(specs, 1);
  ASSERT_TRUE(serial.ok());
  for (size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(Dump((*serial)[i]), want[i]) << names[i];
  }
}

TEST(ParallelSweepTest, ParallelSweepIsBitIdenticalToSerialSweep) {
  ScenarioSpec spec = QuickRegistrySpec("fig2a-lion");
  spec.plan.sweep_clients = {1, 4, 8, 16};

  Result<std::vector<ScenarioReport>> serial = RunSweep(spec, /*jobs=*/1);
  Result<std::vector<ScenarioReport>> parallel = RunSweep(spec, /*jobs=*/4);
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(parallel.ok());
  ASSERT_EQ(serial->size(), 4u);
  ASSERT_EQ(parallel->size(), 4u);
  for (size_t i = 0; i < serial->size(); ++i) {
    EXPECT_EQ(Dump((*serial)[i]), Dump((*parallel)[i])) << "point " << i;
    EXPECT_EQ((*parallel)[i].result.clients, spec.plan.sweep_clients[i]);
  }
}

TEST(ParallelSweepTest, SweepPointSeedsAreSpecDerivedAndStable) {
  // Seeds depend only on (base seed, index) — never on thread assignment
  // or execution order — and point 0 keeps the base seed, so a one-point
  // sweep is the same run as RunScenario(spec).
  EXPECT_EQ(scenario::SweepPointSeed(17, 0), 17u);
  EXPECT_NE(scenario::SweepPointSeed(17, 1), scenario::SweepPointSeed(17, 2));

  ScenarioSpec spec = QuickRegistrySpec("fig2a-lion");
  spec.plan.sweep_clients = {2, 4};
  const std::vector<ScenarioSpec> points = scenario::MakeSweepPoints(spec);
  ASSERT_EQ(points.size(), 2u);
  EXPECT_EQ(points[0].seed, spec.seed);
  EXPECT_EQ(points[1].seed, scenario::SweepPointSeed(spec.seed, 1));
  EXPECT_TRUE(points[0].plan.sweep_clients.empty());
  EXPECT_EQ(points[0].clients, 2);
  EXPECT_EQ(points[1].clients, 4);
}

TEST(ParallelSweepTest, RunManyFailsFastOnAnInvalidSpec) {
  ScenarioSpec good = QuickRegistrySpec("fig2a-lion");
  ScenarioSpec bad = good;
  bad.schedule.push_back({Millis(10), scenario::EventKind::kCrash,
                          /*replica=*/99});
  Result<std::vector<ScenarioReport>> reports = RunMany({good, bad}, 4);
  ASSERT_FALSE(reports.ok());
  EXPECT_EQ(reports.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace seemore
