// Encoder/Decoder round trips, bounds checking, and malformed-input safety
// (a Byzantine peer can send arbitrary bytes; decoding must fail cleanly).

#include <gtest/gtest.h>

#include "util/rng.h"
#include "wire/wire.h"

namespace seemore {
namespace {

TEST(WireTest, PrimitiveRoundTrip) {
  Encoder enc;
  enc.PutU8(0xab);
  enc.PutU16(0xbeef);
  enc.PutU32(0xdeadbeef);
  enc.PutU64(0x0123456789abcdefULL);
  enc.PutI64(-42);

  Decoder dec(enc.bytes());
  EXPECT_EQ(dec.GetU8(), 0xab);
  EXPECT_EQ(dec.GetU16(), 0xbeef);
  EXPECT_EQ(dec.GetU32(), 0xdeadbeefu);
  EXPECT_EQ(dec.GetU64(), 0x0123456789abcdefULL);
  EXPECT_EQ(dec.GetI64(), -42);
  EXPECT_TRUE(dec.AtEnd());
  EXPECT_TRUE(dec.Finish().ok());
}

TEST(WireTest, VarintRoundTrip) {
  const uint64_t values[] = {0,     1,       127,        128,
                             16383, 16384,   (1ULL << 32),
                             (1ULL << 63),   UINT64_MAX};
  Encoder enc;
  for (uint64_t v : values) enc.PutVarint(v);
  Decoder dec(enc.bytes());
  for (uint64_t v : values) EXPECT_EQ(dec.GetVarint(), v);
  EXPECT_TRUE(dec.AtEnd());
}

TEST(WireTest, BytesAndStrings) {
  Encoder enc;
  enc.PutBytes(Bytes{});
  enc.PutBytes(Bytes{1, 2, 3});
  enc.PutString("hello");
  std::string big(100000, 'x');
  enc.PutString(big);

  Decoder dec(enc.bytes());
  EXPECT_TRUE(dec.GetBytes().empty());
  EXPECT_EQ(dec.GetBytes(), (Bytes{1, 2, 3}));
  EXPECT_EQ(dec.GetString(), "hello");
  EXPECT_EQ(dec.GetString(), big);
  EXPECT_TRUE(dec.AtEnd());
}

TEST(WireTest, TruncatedInputFailsSticky) {
  Encoder enc;
  enc.PutU64(7);
  Bytes data = enc.Take();
  data.resize(4);  // truncate mid-field
  Decoder dec(data);
  dec.GetU64();
  EXPECT_FALSE(dec.ok());
  EXPECT_EQ(dec.status().code(), StatusCode::kCorruption);
  // Sticky: everything after the failure also fails.
  EXPECT_EQ(dec.GetU8(), 0);
  EXPECT_FALSE(dec.ok());
}

TEST(WireTest, BytesLengthExceedingInputFails) {
  Encoder enc;
  enc.PutVarint(1000);  // claims 1000 bytes follow
  enc.PutU8(1);
  Decoder dec(enc.bytes());
  EXPECT_TRUE(dec.GetBytes().empty());
  EXPECT_FALSE(dec.ok());
}

TEST(WireTest, VarintOverflowFails) {
  // 11 continuation bytes exceed a u64.
  Bytes data(11, 0xff);
  Decoder dec(data);
  dec.GetVarint();
  EXPECT_FALSE(dec.ok());
}

TEST(WireTest, TrailingBytesDetectedByFinish) {
  Encoder enc;
  enc.PutU8(1);
  enc.PutU8(2);
  Decoder dec(enc.bytes());
  dec.GetU8();
  EXPECT_FALSE(dec.Finish().ok());
}

TEST(WireTest, RawFields) {
  Encoder enc;
  uint8_t raw[5] = {9, 8, 7, 6, 5};
  enc.PutRaw(raw, sizeof(raw));
  Decoder dec(enc.bytes());
  Bytes out = dec.GetRaw(5);
  EXPECT_EQ(out, (Bytes{9, 8, 7, 6, 5}));
  EXPECT_TRUE(dec.AtEnd());

  Decoder dec2(enc.bytes());
  uint8_t into[5];
  EXPECT_TRUE(dec2.GetRawInto(into, 5));
  EXPECT_EQ(0, memcmp(into, raw, 5));
  EXPECT_FALSE(dec2.GetRawInto(into, 1));  // exhausted
}

TEST(WireTest, RandomGarbageNeverCrashes) {
  // Fuzz-ish: decode random byte strings with every getter; must fail or
  // succeed without UB (run under the normal test harness).
  uint64_t state = 12345;
  for (int round = 0; round < 200; ++round) {
    Bytes garbage;
    const int len = static_cast<int>(SplitMix64(state) % 64);
    for (int i = 0; i < len; ++i) {
      garbage.push_back(static_cast<uint8_t>(SplitMix64(state)));
    }
    Decoder dec(garbage);
    dec.GetVarint();
    dec.GetBytes();
    dec.GetU32();
    dec.GetString();
    (void)dec.ok();
  }
  SUCCEED();
}

}  // namespace
}  // namespace seemore
