// Encoder/Decoder round trips, bounds checking, and malformed-input safety
// (a Byzantine peer can send arbitrary bytes; decoding must fail cleanly).
// The second half covers the typed message codecs of wire/messages.h: every
// protocol message round-trips, and truncated or corrupted frames are
// rejected without crashing.

#include <gtest/gtest.h>

#include <array>
#include <functional>

#include "crypto/keystore.h"
#include "util/rng.h"
#include "wire/messages.h"
#include "wire/wire.h"

namespace seemore {
namespace {

TEST(WireTest, PrimitiveRoundTrip) {
  Encoder enc;
  enc.PutU8(0xab);
  enc.PutU16(0xbeef);
  enc.PutU32(0xdeadbeef);
  enc.PutU64(0x0123456789abcdefULL);
  enc.PutI64(-42);

  Decoder dec(enc.bytes());
  EXPECT_EQ(dec.GetU8(), 0xab);
  EXPECT_EQ(dec.GetU16(), 0xbeef);
  EXPECT_EQ(dec.GetU32(), 0xdeadbeefu);
  EXPECT_EQ(dec.GetU64(), 0x0123456789abcdefULL);
  EXPECT_EQ(dec.GetI64(), -42);
  EXPECT_TRUE(dec.AtEnd());
  EXPECT_TRUE(dec.Finish().ok());
}

TEST(WireTest, VarintRoundTrip) {
  const uint64_t values[] = {0,     1,       127,        128,
                             16383, 16384,   (1ULL << 32),
                             (1ULL << 63),   UINT64_MAX};
  Encoder enc;
  for (uint64_t v : values) enc.PutVarint(v);
  Decoder dec(enc.bytes());
  for (uint64_t v : values) EXPECT_EQ(dec.GetVarint(), v);
  EXPECT_TRUE(dec.AtEnd());
}

TEST(WireTest, BytesAndStrings) {
  Encoder enc;
  enc.PutBytes(Bytes{});
  enc.PutBytes(Bytes{1, 2, 3});
  enc.PutString("hello");
  std::string big(100000, 'x');
  enc.PutString(big);

  Decoder dec(enc.bytes());
  EXPECT_TRUE(dec.GetBytes().empty());
  EXPECT_EQ(dec.GetBytes(), (Bytes{1, 2, 3}));
  EXPECT_EQ(dec.GetString(), "hello");
  EXPECT_EQ(dec.GetString(), big);
  EXPECT_TRUE(dec.AtEnd());
}

TEST(WireTest, TruncatedInputFailsSticky) {
  Encoder enc;
  enc.PutU64(7);
  Bytes data = enc.Take();
  data.resize(4);  // truncate mid-field
  Decoder dec(data);
  dec.GetU64();
  EXPECT_FALSE(dec.ok());
  EXPECT_EQ(dec.status().code(), StatusCode::kCorruption);
  // Sticky: everything after the failure also fails.
  EXPECT_EQ(dec.GetU8(), 0);
  EXPECT_FALSE(dec.ok());
}

TEST(WireTest, BytesLengthExceedingInputFails) {
  Encoder enc;
  enc.PutVarint(1000);  // claims 1000 bytes follow
  enc.PutU8(1);
  Decoder dec(enc.bytes());
  EXPECT_TRUE(dec.GetBytes().empty());
  EXPECT_FALSE(dec.ok());
}

TEST(WireTest, VarintOverflowFails) {
  // 11 continuation bytes exceed a u64.
  Bytes data(11, 0xff);
  Decoder dec(data);
  dec.GetVarint();
  EXPECT_FALSE(dec.ok());
}

TEST(WireTest, TrailingBytesDetectedByFinish) {
  Encoder enc;
  enc.PutU8(1);
  enc.PutU8(2);
  Decoder dec(enc.bytes());
  dec.GetU8();
  EXPECT_FALSE(dec.Finish().ok());
}

TEST(WireTest, RawFields) {
  Encoder enc;
  uint8_t raw[5] = {9, 8, 7, 6, 5};
  enc.PutRaw(raw, sizeof(raw));
  Decoder dec(enc.bytes());
  Bytes out = dec.GetRaw(5);
  EXPECT_EQ(out, (Bytes{9, 8, 7, 6, 5}));
  EXPECT_TRUE(dec.AtEnd());

  Decoder dec2(enc.bytes());
  uint8_t into[5];
  EXPECT_TRUE(dec2.GetRawInto(into, 5));
  EXPECT_EQ(0, memcmp(into, raw, 5));
  EXPECT_FALSE(dec2.GetRawInto(into, 1));  // exhausted
}

TEST(WireTest, RandomGarbageNeverCrashes) {
  // Fuzz-ish: decode random byte strings with every getter; must fail or
  // succeed without UB (run under the normal test harness).
  uint64_t state = 12345;
  for (int round = 0; round < 200; ++round) {
    Bytes garbage;
    const int len = static_cast<int>(SplitMix64(state) % 64);
    for (int i = 0; i < len; ++i) {
      garbage.push_back(static_cast<uint8_t>(SplitMix64(state)));
    }
    Decoder dec(garbage);
    dec.GetVarint();
    dec.GetBytes();
    dec.GetU32();
    dec.GetString();
    (void)dec.ok();
  }
  SUCCEED();
}

// ---------------------------------------------------------------------------
// Typed message codecs (wire/messages.h)
// ---------------------------------------------------------------------------

/// Fixtures shared by the typed-message tests.
class MessagesTest : public ::testing::Test {
 protected:
  MessagesTest() : keystore_(42), signer_(1, keystore_) {}

  Batch SampleBatch() const {
    Signer client_signer(kClientIdBase, keystore_);
    Batch batch;
    Request request;
    request.client = kClientIdBase;
    request.timestamp = 7;
    request.op = Bytes{10, 20, 30, 40};
    request.Sign(client_signer);
    batch.requests.push_back(std::move(request));
    return batch;
  }

  Digest FillDigest(uint8_t fill) const {
    std::array<uint8_t, Digest::kSize> bytes;
    bytes.fill(fill);
    return Digest(bytes);
  }

  /// Every strict prefix of a message body must be rejected: the decoders
  /// consume a fixed field sequence, so truncation anywhere is corruption.
  void ExpectPrefixesRejected(
      const Bytes& body,
      const std::function<bool(Decoder&)>& decode_ok) const {
    for (size_t len = 0; len < body.size(); ++len) {
      Decoder dec(body.data(), len);
      EXPECT_FALSE(decode_ok(dec)) << "prefix of length " << len
                                   << "/" << body.size() << " decoded";
    }
  }

  /// Strips the tag byte off a framed message and checks it.
  static Bytes Body(const Bytes& frame, uint8_t expected_tag) {
    EXPECT_FALSE(frame.empty());
    EXPECT_EQ(frame[0], expected_tag);
    return Bytes(frame.begin() + 1, frame.end());
  }

  KeyStore keystore_;
  Signer signer_;
};

TEST_F(MessagesTest, SmPrepareRoundTripAndSignature) {
  SmPrepareMsg msg;
  msg.mode = 2;
  msg.view = 5;
  msg.seq = 99;
  msg.batch = SampleBatch().Encode();
  msg.digest = Digest::Of(msg.batch);
  msg.sig = signer_.Sign(msg.Header());

  const Bytes body = Body(msg.ToMessage(), kSmPrepare);
  Decoder dec(body);
  Result<SmPrepareMsg> out = SmPrepareMsg::DecodeFrom(dec);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value().mode, msg.mode);
  EXPECT_EQ(out.value().view, msg.view);
  EXPECT_EQ(out.value().seq, msg.seq);
  EXPECT_EQ(out.value().digest, msg.digest);
  EXPECT_EQ(out.value().batch, msg.batch);
  EXPECT_TRUE(out.value().VerifySignature(keystore_, 1));
  EXPECT_FALSE(out.value().VerifySignature(keystore_, 2));  // wrong signer

  ExpectPrefixesRejected(body, [](Decoder& d) {
    return SmPrepareMsg::DecodeFrom(d).ok();
  });
}

TEST_F(MessagesTest, SmVotesRoundTripAndDomainSeparation) {
  SmAcceptSignedMsg accept;
  accept.mode = 3;
  accept.view = 2;
  accept.seq = 11;
  accept.digest = FillDigest(0xaa);
  accept.voter = 1;
  accept.sig = signer_.Sign(accept.Header(SmAcceptSignedMsg::kDomain));

  const Bytes body = Body(accept.ToMessage(), kSmAcceptSigned);
  Decoder dec(body);
  Result<SmAcceptSignedMsg> out = SmAcceptSignedMsg::DecodeFrom(dec);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out.value().Verify(keystore_));
  // The same bytes must NOT verify under the commit-vote domain: signature
  // domains separate the phases.
  SmCommitVoteMsg cross;
  static_cast<SmSignedVoteBody&>(cross) = out.value();
  EXPECT_FALSE(cross.Verify(keystore_));

  // Corrupted signature must fail verification (but still decode).
  Bytes corrupted = body;
  corrupted.back() ^= 0xff;
  Decoder dec2(corrupted);
  Result<SmAcceptSignedMsg> bad = SmAcceptSignedMsg::DecodeFrom(dec2);
  ASSERT_TRUE(bad.ok());
  EXPECT_FALSE(bad.value().Verify(keystore_));

  ExpectPrefixesRejected(body, [](Decoder& d) {
    return SmAcceptSignedMsg::DecodeFrom(d).ok();
  });

  SmInformMsg inform;
  inform.mode = 2;
  inform.view = 1;
  inform.seq = 4;
  inform.digest = FillDigest(0x11);
  inform.voter = 1;
  inform.sig = signer_.Sign(inform.Header(SmInformMsg::kDomain));
  const Bytes inform_body = Body(inform.ToMessage(), kSmInform);
  Decoder dec3(inform_body);
  Result<SmInformMsg> inform_out = SmInformMsg::DecodeFrom(dec3);
  ASSERT_TRUE(inform_out.ok());
  EXPECT_TRUE(inform_out.value().Verify(keystore_));
}

TEST_F(MessagesTest, SmAcceptPlainAndCommitPrimaryRoundTrip) {
  SmAcceptPlainMsg plain{1, 3, 7, FillDigest(0x5e), 4};
  const Bytes plain_body = Body(plain.ToMessage(), kSmAcceptPlain);
  Decoder dec(plain_body);
  Result<SmAcceptPlainMsg> plain_out = SmAcceptPlainMsg::DecodeFrom(dec);
  ASSERT_TRUE(plain_out.ok());
  EXPECT_EQ(plain_out.value().voter, 4);
  EXPECT_EQ(plain_out.value().digest, plain.digest);

  SmCommitPrimaryMsg commit;
  commit.mode = 1;
  commit.view = 0;
  commit.seq = 12;
  commit.batch = SampleBatch().Encode();
  commit.digest = Digest::Of(commit.batch);
  commit.sig = signer_.Sign(commit.Header());
  const Bytes body = Body(commit.ToMessage(), kSmCommitPrimary);
  Decoder dec2(body);
  Result<SmCommitPrimaryMsg> commit_out = SmCommitPrimaryMsg::DecodeFrom(dec2);
  ASSERT_TRUE(commit_out.ok());
  EXPECT_TRUE(commit_out.value().VerifySignature(keystore_, 1));
  ExpectPrefixesRejected(body, [](Decoder& d) {
    return SmCommitPrimaryMsg::DecodeFrom(d).ok();
  });
}

TEST_F(MessagesTest, SmViewChangeRoundTripTruncationAndCorruption) {
  const Batch batch = SampleBatch();
  SmViewChangeMsg msg;
  msg.mode = 1;
  msg.new_view = 9;
  msg.stable_seq = 3;
  msg.cert = CheckpointCert::Genesis();
  SmVcEntry prepare;
  prepare.mode = SeeMoReMode::kLion;
  prepare.view = 8;
  prepare.seq = 4;
  prepare.batch = batch;
  prepare.digest = Digest::Of(batch.Encode());
  prepare.sig = signer_.Sign(Bytes{1});
  msg.prepares.push_back(prepare);
  SmVcEntry commit = prepare;
  commit.seq = 5;
  msg.commits.push_back(commit);
  msg.sender = 1;

  const Bytes body = Body(msg.ToMessage(), kSmViewChange);
  {
    Decoder dec(body);
    Result<SmViewChangeMsg> out = SmViewChangeMsg::DecodeFrom(dec, 100);
    ASSERT_TRUE(out.ok());
    EXPECT_EQ(out.value().new_view, 9u);
    ASSERT_EQ(out.value().prepares.size(), 1u);
    EXPECT_EQ(out.value().prepares[0].seq, 4u);
    ASSERT_EQ(out.value().commits.size(), 1u);
    EXPECT_TRUE(out.value().prepares[0].batch.requests ==
                batch.requests);
  }
  // Entry-count bound: a window of 0 entries rejects the message.
  {
    Decoder dec(body);
    EXPECT_FALSE(SmViewChangeMsg::DecodeFrom(dec, 0).ok());
  }
  // Trailing garbage violates the Finish() requirement.
  {
    Bytes padded = body;
    padded.push_back(0x00);
    Decoder dec(padded);
    EXPECT_FALSE(SmViewChangeMsg::DecodeFrom(dec, 100).ok());
  }
  // A corrupted entry digest breaks the digest<->batch binding. Layout:
  // mode(1) new_view(8) stable_seq(8) genesis cert(1) n_prepares(1) then
  // the first entry's mode(1) view(8) seq(8) digest...
  {
    Bytes corrupted = body;
    corrupted[1 + 8 + 8 + 1 + 1 + 1 + 8 + 8] ^= 0xff;
    Decoder dec(corrupted);
    EXPECT_FALSE(SmViewChangeMsg::DecodeFrom(dec, 100).ok());
  }
  ExpectPrefixesRejected(body, [](Decoder& d) {
    return SmViewChangeMsg::DecodeFrom(d, 100).ok();
  });
}

TEST_F(MessagesTest, SmNewViewAndModeChangeRoundTrip) {
  SmNewViewMsg msg;
  msg.mode = 2;
  msg.new_view = 4;
  msg.low = 1;
  SmNewViewEntry entry;
  entry.view = 4;
  entry.seq = 2;
  entry.batch = SampleBatch().Encode();
  entry.digest = Digest::Of(entry.batch);
  entry.sig = signer_.Sign(Bytes{2});
  msg.prepares.push_back(entry);
  // Signed last: the header binds the entry sets via EntrySetDigest.
  msg.header_sig = signer_.Sign(msg.Header());

  const Bytes body = Body(msg.ToMessage(), kSmNewView);
  Decoder dec(body);
  Result<SmNewViewMsg> out = SmNewViewMsg::DecodeFrom(dec, 10);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out.value().VerifySignature(keystore_, 1));
  ASSERT_EQ(out.value().prepares.size(), 1u);
  EXPECT_EQ(out.value().prepares[0].batch, entry.batch);
  // A relayer that strips, reorders, or retargets entries must break the
  // header signature (NEW-VIEW is relayed by untrusted peers).
  {
    SmNewViewMsg pruned = out.value();
    pruned.prepares.clear();
    EXPECT_FALSE(pruned.VerifySignature(keystore_, 1));
  }
  {
    SmNewViewMsg moved = out.value();
    moved.commits.push_back(moved.prepares[0]);
    moved.prepares.clear();
    EXPECT_FALSE(moved.VerifySignature(keystore_, 1));
  }
  {
    SmNewViewMsg reseq = out.value();
    reseq.prepares[0].seq = 3;
    EXPECT_FALSE(reseq.VerifySignature(keystore_, 1));
  }
  {
    Decoder bounded(body);
    EXPECT_FALSE(SmNewViewMsg::DecodeFrom(bounded, 0).ok());
  }
  ExpectPrefixesRejected(body, [](Decoder& d) {
    return SmNewViewMsg::DecodeFrom(d, 10).ok();
  });

  SmModeChangeMsg mc;
  mc.mode = 3;
  mc.new_view = 6;
  mc.sender = 1;
  mc.sig = signer_.Sign(mc.Header());
  const Bytes mc_body = Body(mc.ToMessage(), kSmModeChange);
  Decoder dec2(mc_body);
  Result<SmModeChangeMsg> mc_out = SmModeChangeMsg::DecodeFrom(dec2);
  ASSERT_TRUE(mc_out.ok());
  EXPECT_TRUE(mc_out.value().VerifySignature(keystore_));
}

TEST_F(MessagesTest, StateTransferRoundTrip) {
  StateRequestMsg request{77};
  const Bytes request_body =
      Body(request.ToMessage(kSmStateRequest), kSmStateRequest);
  Decoder dec(request_body);
  Result<StateRequestMsg> request_out = StateRequestMsg::DecodeFrom(dec);
  ASSERT_TRUE(request_out.ok());
  EXPECT_EQ(request_out.value().last_executed, 77u);

  StateResponseMsg response;
  response.cert = CheckpointCert::Genesis();
  response.snapshot = Bytes{9, 9, 9};
  const Bytes body = Body(response.ToMessage(kPbftStateResponse),
                          kPbftStateResponse);
  Decoder dec2(body);
  Result<StateResponseMsg> response_out = StateResponseMsg::DecodeFrom(dec2);
  ASSERT_TRUE(response_out.ok());
  EXPECT_EQ(response_out.value().snapshot, response.snapshot);
  ExpectPrefixesRejected(body, [](Decoder& d) {
    return StateResponseMsg::DecodeFrom(d).ok();
  });
}

TEST_F(MessagesTest, CheckpointFrameRoundTrip) {
  CheckpointMsg msg;
  msg.seq = 128;
  msg.state_digest = FillDigest(0xcc);
  msg.replica = 1;
  msg.Sign(signer_);
  const Bytes frame = FrameMessage(kSmCheckpoint, msg);
  const Bytes checkpoint_body = Body(frame, kSmCheckpoint);
  Decoder dec(checkpoint_body);
  Result<CheckpointMsg> out = CheckpointMsg::DecodeFrom(dec);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value().seq, 128u);
  EXPECT_TRUE(out.value().Verify(keystore_));
}

TEST_F(MessagesTest, PbftMessagesRoundTrip) {
  PbftPrePrepareMsg pp;
  pp.view = 1;
  pp.seq = 2;
  pp.batch = SampleBatch().Encode();
  pp.digest = Digest::Of(pp.batch);
  pp.sig = signer_.Sign(pp.Header());
  const Bytes body = Body(pp.ToMessage(), kPbftPrePrepare);
  Decoder dec(body);
  Result<PbftPrePrepareMsg> pp_out = PbftPrePrepareMsg::DecodeFrom(dec);
  ASSERT_TRUE(pp_out.ok());
  EXPECT_TRUE(pp_out.value().VerifySignature(keystore_, 1));
  ExpectPrefixesRejected(body, [](Decoder& d) {
    return PbftPrePrepareMsg::DecodeFrom(d).ok();
  });

  PbftPrepareMsg prepare;
  prepare.view = 1;
  prepare.seq = 2;
  prepare.digest = pp.digest;
  prepare.voter = 1;
  prepare.sig = signer_.Sign(prepare.Header(PbftPrepareMsg::kDomain));
  const Bytes prepare_body = Body(prepare.ToMessage(), kPbftPrepare);
  Decoder dec2(prepare_body);
  Result<PbftPrepareMsg> prepare_out = PbftPrepareMsg::DecodeFrom(dec2);
  ASSERT_TRUE(prepare_out.ok());
  EXPECT_TRUE(prepare_out.value().Verify(keystore_));
  // Prepare and commit domains are separated.
  PbftCommitMsg cross;
  static_cast<PbftVoteBody&>(cross) = prepare_out.value();
  EXPECT_FALSE(cross.Verify(keystore_));
}

TEST_F(MessagesTest, PbftViewChangeBuildDecodeVerify) {
  const Bytes raw = PbftViewChangeMsg::Build(
      /*new_view=*/6, /*stable_seq=*/0, CheckpointCert::Genesis(), {},
      signer_);
  EXPECT_EQ(PbftViewChangeMsg::PeekNewView(raw), 6u);

  Result<PbftViewChangeMsg> out = PbftViewChangeMsg::DecodeFrom(raw, 10);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value().sender, 1);
  EXPECT_TRUE(out.value().VerifySignature(keystore_, raw));

  // Any body flip invalidates the whole-frame signature.
  Bytes corrupted = raw;
  corrupted[2] ^= 0x01;
  Result<PbftViewChangeMsg> bad = PbftViewChangeMsg::DecodeFrom(corrupted, 10);
  if (bad.ok()) {
    EXPECT_FALSE(bad.value().VerifySignature(keystore_, corrupted));
  }

  // Truncations of the whole frame are rejected.
  for (size_t len = 0; len < raw.size(); ++len) {
    Bytes prefix(raw.begin(), raw.begin() + static_cast<long>(len));
    EXPECT_FALSE(PbftViewChangeMsg::DecodeFrom(prefix, 10).ok());
  }
  EXPECT_EQ(PbftViewChangeMsg::PeekNewView(Bytes{}), 0u);
}

TEST_F(MessagesTest, PbftNewViewRoundTripAndBounds) {
  PbftNewViewMsg msg;
  msg.new_view = 3;
  msg.view_changes.push_back(Bytes{1, 2, 3});
  PbftNewViewEntry entry;
  entry.seq = 9;
  entry.digest = FillDigest(0x77);
  entry.sig = signer_.Sign(Bytes{3});
  msg.entries.push_back(entry);

  const Bytes body = Body(msg.ToMessage(), kPbftNewView);
  Decoder dec(body);
  Result<PbftNewViewMsg> out = PbftNewViewMsg::DecodeFrom(dec, 4, 10);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out.value().view_changes.size(), 1u);
  EXPECT_EQ(out.value().view_changes[0], (Bytes{1, 2, 3}));
  ASSERT_EQ(out.value().entries.size(), 1u);
  EXPECT_EQ(out.value().entries[0].seq, 9u);
  {
    Decoder bounded(body);
    EXPECT_FALSE(PbftNewViewMsg::DecodeFrom(bounded, 0, 10).ok());
  }
  {
    Decoder bounded(body);
    EXPECT_FALSE(PbftNewViewMsg::DecodeFrom(bounded, 4, 0).ok());
  }
  ExpectPrefixesRejected(body, [](Decoder& d) {
    return PbftNewViewMsg::DecodeFrom(d, 4, 10).ok();
  });
}

TEST_F(MessagesTest, PaxosMessagesRoundTrip) {
  PaxosAcceptMsg accept{2, 5, SampleBatch().Encode()};
  const Bytes accept_body = Body(accept.ToMessage(), kPaxAccept);
  Decoder dec(accept_body);
  Result<PaxosAcceptMsg> accept_out = PaxosAcceptMsg::DecodeFrom(dec);
  ASSERT_TRUE(accept_out.ok());
  EXPECT_EQ(accept_out.value().batch, accept.batch);

  PaxosAckMsg ack{2, 5, FillDigest(0x21)};
  const Bytes ack_body = Body(ack.ToMessage(), kPaxAck);
  Decoder dec2(ack_body);
  ASSERT_TRUE(PaxosAckMsg::DecodeFrom(dec2).ok());

  PaxosCommitMsg commit{2, 5, FillDigest(0x22)};
  const Bytes commit_body = Body(commit.ToMessage(), kPaxCommit);
  Decoder dec3(commit_body);
  ASSERT_TRUE(PaxosCommitMsg::DecodeFrom(dec3).ok());

  PaxosCheckpointMsg checkpoint{128, FillDigest(0x23)};
  const Bytes cp_body = Body(checkpoint.ToMessage(), kPaxCheckpoint);
  Decoder dec4(cp_body);
  ASSERT_TRUE(PaxosCheckpointMsg::DecodeFrom(dec4).ok());
  ExpectPrefixesRejected(cp_body, [](Decoder& d) {
    return PaxosCheckpointMsg::DecodeFrom(d).ok();
  });

  PaxosStateResponseMsg response{7, FillDigest(0x24), Bytes{1, 2}};
  const Bytes response_body = Body(response.ToMessage(), kPaxStateResponse);
  Decoder dec5(response_body);
  Result<PaxosStateResponseMsg> response_out =
      PaxosStateResponseMsg::DecodeFrom(dec5);
  ASSERT_TRUE(response_out.ok());
  EXPECT_EQ(response_out.value().snapshot, (Bytes{1, 2}));
}

TEST_F(MessagesTest, PaxosViewChangeWindowEnforced) {
  PaxosViewChangeMsg msg;
  msg.new_view = 2;
  msg.stable_seq = 10;
  PaxosVcEntry entry;
  entry.seq = 12;
  entry.view = 1;
  entry.batch = SampleBatch();
  msg.entries.push_back(entry);

  const Bytes body = Body(msg.ToMessage(), kPaxViewChange);
  {
    Decoder dec(body);
    Result<PaxosViewChangeMsg> out = PaxosViewChangeMsg::DecodeFrom(dec, 16);
    ASSERT_TRUE(out.ok());
    ASSERT_EQ(out.value().entries.size(), 1u);
    EXPECT_EQ(out.value().entries[0].seq, 12u);
  }
  // seq 12 is outside a window of 1 above stable_seq 10.
  {
    Decoder dec(body);
    EXPECT_FALSE(PaxosViewChangeMsg::DecodeFrom(dec, 1).ok());
  }
  ExpectPrefixesRejected(body, [](Decoder& d) {
    return PaxosViewChangeMsg::DecodeFrom(d, 16).ok();
  });

  PaxosNewViewMsg nv;
  nv.new_view = 2;
  nv.stable_seq = 10;
  PaxosNewViewEntry nv_entry;
  nv_entry.seq = 11;
  nv_entry.batch = SampleBatch().Encode();
  nv.entries.push_back(nv_entry);
  const Bytes nv_body = Body(nv.ToMessage(), kPaxNewView);
  Decoder dec(nv_body);
  Result<PaxosNewViewMsg> nv_out = PaxosNewViewMsg::DecodeFrom(dec, 16);
  ASSERT_TRUE(nv_out.ok());
  ASSERT_EQ(nv_out.value().entries.size(), 1u);
  {
    Decoder bounded(nv_body);
    EXPECT_FALSE(PaxosNewViewMsg::DecodeFrom(bounded, 0).ok());
  }
}

TEST_F(MessagesTest, DispatchTypedRoutesAndDropsMalformed) {
  struct Sink {
    std::vector<SmAcceptPlainMsg> got;
    std::vector<PrincipalId> froms;
    void OnAccept(PrincipalId from, SmAcceptPlainMsg msg) {
      froms.push_back(from);
      got.push_back(std::move(msg));
    }
  };
  Sink sink;

  SmAcceptPlainMsg msg{1, 2, 3, FillDigest(0x99), 5};
  const Bytes frame = msg.ToMessage();
  Decoder dec(frame);
  EXPECT_EQ(dec.GetU8(), kSmAcceptPlain);
  DispatchTyped(&sink, 7, dec, &Sink::OnAccept);
  ASSERT_EQ(sink.got.size(), 1u);
  EXPECT_EQ(sink.froms[0], 7);
  EXPECT_EQ(sink.got[0].seq, 3u);

  // Malformed bodies are dropped, not delivered.
  Bytes truncated(frame.begin(), frame.begin() + 4);
  Decoder dec2(truncated);
  dec2.GetU8();
  DispatchTyped(&sink, 7, dec2, &Sink::OnAccept);
  EXPECT_EQ(sink.got.size(), 1u);
}

TEST_F(MessagesTest, TypedMessageFuzzNeverCrashes) {
  // Random bytes through every typed decoder: must fail or succeed without
  // UB, mirroring what a Byzantine peer can inject.
  uint64_t state = 0xfeedface;
  for (int round = 0; round < 200; ++round) {
    Bytes garbage;
    const int len = static_cast<int>(SplitMix64(state) % 200);
    for (int i = 0; i < len; ++i) {
      garbage.push_back(static_cast<uint8_t>(SplitMix64(state)));
    }
    {
      Decoder dec(garbage);
      (void)SmPrepareMsg::DecodeFrom(dec);
    }
    {
      Decoder dec(garbage);
      (void)SmViewChangeMsg::DecodeFrom(dec, 64);
    }
    {
      Decoder dec(garbage);
      (void)SmNewViewMsg::DecodeFrom(dec, 64);
    }
    (void)PbftViewChangeMsg::DecodeFrom(garbage, 64);
    {
      Decoder dec(garbage);
      (void)PbftNewViewMsg::DecodeFrom(dec, 8, 64);
    }
    {
      Decoder dec(garbage);
      (void)PaxosViewChangeMsg::DecodeFrom(dec, 64);
    }
    {
      Decoder dec(garbage);
      (void)PaxosNewViewMsg::DecodeFrom(dec, 64);
    }
  }
  SUCCEED();
}

}  // namespace
}  // namespace seemore
