// SeeMoRe Dog mode (§5.2): trusted primary sequences, 3m+1 public proxies
// agree (quorum 2m+1), passive nodes execute after 2m+1 INFORMs.

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace seemore {
namespace {

using testing::RunBurst;
using testing::SeeMoReOptions;
using testing::SubmitAndWait;

TEST(DogTest, CommitsSingleRequest) {
  Cluster cluster(SeeMoReOptions(SeeMoReMode::kDog, 1, 1));
  SimClient* client = cluster.AddClient();
  auto result = SubmitAndWait(cluster, client, MakePut("k", "v"));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(ParseKvReply(*result).status, KvResult::kOk);
}

TEST(DogTest, PassivePrivateNodesExecuteViaInforms) {
  Cluster cluster(SeeMoReOptions(SeeMoReMode::kDog, 1, 1));
  SimClient* client = cluster.AddClient();
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(
        SubmitAndWait(cluster, client, MakePut("k" + std::to_string(i), "v"))
            .ok());
  }
  cluster.sim().RunUntil(cluster.sim().now() + Millis(100));
  // Private nodes (0, 1) never run agreement but still execute everything.
  EXPECT_EQ(cluster.seemore(0)->last_executed(),
            cluster.seemore(2)->last_executed());
  EXPECT_EQ(cluster.seemore(1)->last_executed(),
            cluster.seemore(2)->last_executed());
  EXPECT_TRUE(cluster.CheckAgreement().ok());
}

TEST(DogTest, NonProxyPublicNodeExecutesViaInforms) {
  // P = 5 > 3m+1 = 4: one public node is outside the proxy window.
  ClusterOptions options = SeeMoReOptions(SeeMoReMode::kDog, 1, 1);
  options.config.p = 5;
  Cluster cluster(options);
  SimClient* client = cluster.AddClient();
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(
        SubmitAndWait(cluster, client, MakePut("k" + std::to_string(i), "v"))
            .ok());
  }
  cluster.sim().RunUntil(cluster.sim().now() + Millis(100));
  // Find the non-proxy public node in view 0 and check it executed.
  for (int i = 2; i < cluster.n(); ++i) {
    EXPECT_EQ(cluster.seemore(i)->last_executed(),
              cluster.seemore(2)->last_executed())
        << "replica " << i;
  }
  EXPECT_TRUE(cluster.CheckAgreement().ok());
}

TEST(DogTest, ToleratesByzantineProxy) {
  Cluster cluster(SeeMoReOptions(SeeMoReMode::kDog, 1, 1));
  cluster.SetByzantine(3, kByzWrongVotes);
  const uint64_t completed = RunBurst(cluster, 4, Millis(300));
  EXPECT_GT(completed, 30u);
  EXPECT_TRUE(cluster.CheckAgreement().ok());
}

TEST(DogTest, ToleratesSilentProxyAndCrashedPrivate) {
  Cluster cluster(SeeMoReOptions(SeeMoReMode::kDog, 1, 1));
  cluster.SetByzantine(2, kByzSilent);
  cluster.Crash(1);  // passive private backup; agreement unaffected
  const uint64_t completed = RunBurst(cluster, 4, Millis(300));
  EXPECT_GT(completed, 30u);
  EXPECT_TRUE(cluster.CheckAgreement().ok());
}

TEST(DogTest, PrimaryCrashViewChangeDrivenByPublicCloud) {
  Cluster cluster(SeeMoReOptions(SeeMoReMode::kDog, 1, 1));
  SimClient* client = cluster.AddClient();
  ASSERT_TRUE(SubmitAndWait(cluster, client, MakePut("a", "1")).ok());
  cluster.Crash(0);  // trusted primary
  auto after = SubmitAndWait(cluster, client, MakePut("b", "2"), Seconds(10));
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_GT(cluster.seemore(1)->view(), 0u);
  EXPECT_EQ(cluster.seemore(1)->mode(), SeeMoReMode::kDog);
  EXPECT_TRUE(cluster.seemore(1)->IsPrimary());
  auto get = SubmitAndWait(cluster, client, MakeGet("a"));
  ASSERT_TRUE(get.ok());
  EXPECT_EQ(ParseKvReply(*get).value, "1");
  EXPECT_TRUE(cluster.CheckAgreement().ok());
}

TEST(DogTest, ClientWaits2MPlus1ProxyReplies) {
  // One lying proxy cannot corrupt the client's 2m+1 matching requirement.
  Cluster cluster(SeeMoReOptions(SeeMoReMode::kDog, 1, 1));
  cluster.SetByzantine(4, kByzLieToClients);
  SimClient* client = cluster.AddClient();
  ASSERT_TRUE(SubmitAndWait(cluster, client, MakePut("key", "real")).ok());
  auto get = SubmitAndWait(cluster, client, MakeGet("key"));
  ASSERT_TRUE(get.ok());
  EXPECT_EQ(ParseKvReply(*get).value, "real");
}

TEST(DogTest, CheckpointsAndGc) {
  ClusterOptions options = SeeMoReOptions(SeeMoReMode::kDog, 1, 1);
  options.config.checkpoint_period = 8;
  Cluster cluster(options);
  RunBurst(cluster, 4, Millis(300));
  cluster.sim().RunUntil(cluster.sim().now() + Millis(100));
  for (int i = 0; i < cluster.n(); ++i) {
    EXPECT_GT(cluster.seemore(i)->stable_checkpoint(), 0u) << "replica " << i;
  }
  EXPECT_TRUE(cluster.CheckAgreement().ok());
}

TEST(DogTest, LargerBudgetC2M2) {
  Cluster cluster(SeeMoReOptions(SeeMoReMode::kDog, 2, 2));
  EXPECT_EQ(cluster.n(), 11);
  cluster.SetByzantine(5, kByzWrongVotes);
  cluster.SetByzantine(6, kByzSilent);
  const uint64_t completed = RunBurst(cluster, 4, Millis(300));
  EXPECT_GT(completed, 20u);
  EXPECT_TRUE(cluster.CheckAgreement().ok());
}

}  // namespace
}  // namespace seemore
