// CRC32C correctness and kernel cross-checks.
//
// The known-answer vectors are the RFC 3720 (iSCSI) appendix B.4 set plus
// the classic "123456789" check value. Every vector and every agreement
// property runs under BOTH kernels (portable table loop and SSE4.2 when the
// host supports it) via the Crc32cForceImpl test hook, so the hardware path
// is validated even though production dispatch would always pick it, and
// the portable path is validated even on hardware hosts.

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "storage/crc32c.h"

namespace seemore {
namespace storage {
namespace {

std::vector<Crc32cImpl> SupportedImpls() {
  std::vector<Crc32cImpl> impls = {Crc32cImpl::kPortable};
  if (Crc32cImplSupported(Crc32cImpl::kSse42)) {
    impls.push_back(Crc32cImpl::kSse42);
  }
  return impls;
}

class ForceEachImpl {
 public:
  explicit ForceEachImpl(Crc32cImpl impl) { EXPECT_TRUE(Crc32cForceImpl(impl)); }
  ~ForceEachImpl() { Crc32cResetImpl(); }
};

struct KnownAnswer {
  std::vector<uint8_t> data;
  uint32_t crc;
};

std::vector<KnownAnswer> Rfc3720Vectors() {
  std::vector<KnownAnswer> vectors;
  // 32 bytes of zeroes.
  vectors.push_back({std::vector<uint8_t>(32, 0x00), 0x8a9136aa});
  // 32 bytes of ones.
  vectors.push_back({std::vector<uint8_t>(32, 0xff), 0x62a8ab43});
  // 32 bytes of incrementing 00..1f.
  {
    std::vector<uint8_t> data(32);
    for (size_t i = 0; i < data.size(); ++i) data[i] = static_cast<uint8_t>(i);
    vectors.push_back({data, 0x46dd794e});
  }
  // 32 bytes of decrementing 1f..00.
  {
    std::vector<uint8_t> data(32);
    for (size_t i = 0; i < data.size(); ++i) {
      data[i] = static_cast<uint8_t>(31 - i);
    }
    vectors.push_back({data, 0x113fdb5c});
  }
  // An iSCSI SCSI Read (10) command PDU.
  vectors.push_back({{0x01, 0xc0, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,  //
                      0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,  //
                      0x14, 0x00, 0x00, 0x00, 0x00, 0x00, 0x04, 0x00,  //
                      0x00, 0x00, 0x00, 0x14, 0x00, 0x00, 0x00, 0x18,  //
                      0x28, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,  //
                      0x02, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00},
                     0xd9963a56});
  return vectors;
}

TEST(Crc32cTest, Rfc3720KnownAnswersUnderEveryKernel) {
  for (Crc32cImpl impl : SupportedImpls()) {
    ForceEachImpl force(impl);
    for (const KnownAnswer& v : Rfc3720Vectors()) {
      EXPECT_EQ(Crc32c(v.data.data(), v.data.size()), v.crc)
          << "impl=" << static_cast<int>(impl);
    }
  }
}

TEST(Crc32cTest, ClassicCheckValueUnderEveryKernel) {
  const std::string check = "123456789";
  for (Crc32cImpl impl : SupportedImpls()) {
    ForceEachImpl force(impl);
    EXPECT_EQ(Crc32c(reinterpret_cast<const uint8_t*>(check.data()),
                     check.size()),
              0xe3069283u)
        << "impl=" << static_cast<int>(impl);
  }
}

TEST(Crc32cTest, EmptyInputIsZero) {
  for (Crc32cImpl impl : SupportedImpls()) {
    ForceEachImpl force(impl);
    EXPECT_EQ(Crc32c(nullptr, 0), 0u);
    EXPECT_EQ(Crc32cExtend(0x12345678u, nullptr, 0), 0x12345678u);
  }
}

// Both kernels must agree on every length class the hardware path
// special-cases: the unaligned head, 64-bit strides, and the byte tail.
// Offsetting into the buffer exercises every alignment of the first byte.
TEST(Crc32cTest, KernelsAgreeOnEveryLengthAndAlignment) {
  if (!Crc32cImplSupported(Crc32cImpl::kSse42)) {
    GTEST_SKIP() << "no SSE4.2 on this host; portable is the only kernel";
  }
  std::vector<uint8_t> buffer(256 + 8);
  uint32_t x = 0x9e3779b9u;  // deterministic fill, no RNG dependency
  for (auto& b : buffer) {
    x ^= x << 13;
    x ^= x >> 17;
    x ^= x << 5;
    b = static_cast<uint8_t>(x);
  }
  for (size_t offset = 0; offset < 8; ++offset) {
    for (size_t len = 0; len <= 256; ++len) {
      ASSERT_TRUE(Crc32cForceImpl(Crc32cImpl::kPortable));
      const uint32_t portable = Crc32c(buffer.data() + offset, len);
      ASSERT_TRUE(Crc32cForceImpl(Crc32cImpl::kSse42));
      const uint32_t hardware = Crc32c(buffer.data() + offset, len);
      Crc32cResetImpl();
      ASSERT_EQ(portable, hardware) << "offset=" << offset << " len=" << len;
    }
  }
}

// Streaming at any split point equals the one-shot CRC — the property the
// WAL reader and the TCP frame reader both rely on when a record arrives
// in pieces. Also run with the kernel switched mid-stream: kernels are pure
// functions of (crc, data), so mixing them is legal.
TEST(Crc32cTest, StreamingSplitsMatchOneShot) {
  const std::string text =
      "The quick brown fox jumps over the lazy dog, 0123456789 times.";
  const uint8_t* data = reinterpret_cast<const uint8_t*>(text.data());
  const size_t len = text.size();
  for (Crc32cImpl impl : SupportedImpls()) {
    ForceEachImpl force(impl);
    const uint32_t one_shot = Crc32c(data, len);
    for (size_t split = 0; split <= len; ++split) {
      uint32_t crc = Crc32c(data, split);
      crc = Crc32cExtend(crc, data + split, len - split);
      ASSERT_EQ(crc, one_shot) << "split=" << split;
    }
  }
  if (Crc32cImplSupported(Crc32cImpl::kSse42)) {
    const uint32_t one_shot = Crc32c(data, len);
    for (size_t split = 0; split <= len; ++split) {
      ASSERT_TRUE(Crc32cForceImpl(Crc32cImpl::kPortable));
      uint32_t crc = Crc32c(data, split);
      ASSERT_TRUE(Crc32cForceImpl(Crc32cImpl::kSse42));
      crc = Crc32cExtend(crc, data + split, len - split);
      Crc32cResetImpl();
      ASSERT_EQ(crc, one_shot) << "mid-stream switch at split=" << split;
    }
  }
}

TEST(Crc32cTest, DispatchHooks) {
  EXPECT_TRUE(Crc32cImplSupported(Crc32cImpl::kPortable));
  EXPECT_TRUE(Crc32cForceImpl(Crc32cImpl::kPortable));
  EXPECT_EQ(Crc32cActiveImpl(), Crc32cImpl::kPortable);
  EXPECT_FALSE(Crc32cUsesHardware());
  Crc32cResetImpl();
  // After reset, hardware iff supported (the auto-detected best kernel).
  EXPECT_EQ(Crc32cUsesHardware(), Crc32cImplSupported(Crc32cImpl::kSse42));
}

}  // namespace
}  // namespace storage
}  // namespace seemore
