// FrameReader robustness: the rt transport's frame codec must survive
// arbitrary stream fragmentation and turn every malformed input into a
// typed error — never a crash, never a hang, never an unbounded buffer.

#include "rt/frame.h"

#include <gtest/gtest.h>

#include <cstring>

namespace seemore {
namespace rt {
namespace {

Bytes MakeBody(size_t len, uint8_t seed = 0x5a) {
  Bytes body(len);
  uint32_t x = seed + 1;
  for (size_t i = 0; i < len; ++i) {
    x = x * 1664525u + 1013904223u;
    body[i] = static_cast<uint8_t>(x >> 24);
  }
  return body;
}

TEST(RtFrame, RoundTripVariousSizes) {
  for (const size_t len : {0u, 1u, 7u, 8u, 9u, 255u, 4096u}) {
    const Bytes body = MakeBody(len);
    const Bytes frame = EncodeFrame(body);
    ASSERT_EQ(frame.size(), kFrameHeaderBytes + len);

    FrameReader reader;
    ASSERT_TRUE(reader.Feed(frame.data(), frame.size()).ok());
    Payload out;
    ASSERT_TRUE(reader.Next(&out));
    EXPECT_EQ(out.ToBytes(), body);
    EXPECT_FALSE(reader.Next(&out));
    EXPECT_EQ(reader.buffered(), 0u);
  }
}

// The satellite requirement: a multi-frame stream delivered one byte at a
// time, and split at EVERY byte boundary, decodes identically.
TEST(RtFrame, EveryByteBoundary) {
  Bytes stream;
  std::vector<Bytes> bodies;
  for (const size_t len : {0u, 3u, 17u, 64u}) {
    bodies.push_back(MakeBody(len, static_cast<uint8_t>(len)));
    const Bytes frame = EncodeFrame(bodies.back());
    stream.insert(stream.end(), frame.begin(), frame.end());
  }

  // One byte at a time.
  {
    FrameReader reader;
    std::vector<Bytes> decoded;
    for (const uint8_t byte : stream) {
      ASSERT_TRUE(reader.Feed(&byte, 1).ok());
      Payload out;
      while (reader.Next(&out)) decoded.push_back(out.ToBytes());
    }
    ASSERT_EQ(decoded.size(), bodies.size());
    for (size_t i = 0; i < bodies.size(); ++i) EXPECT_EQ(decoded[i], bodies[i]);
  }

  // Every two-chunk split.
  for (size_t split = 0; split <= stream.size(); ++split) {
    FrameReader reader;
    ASSERT_TRUE(reader.Feed(stream.data(), split).ok());
    ASSERT_TRUE(reader.Feed(stream.data() + split, stream.size() - split).ok());
    std::vector<Bytes> decoded;
    Payload out;
    while (reader.Next(&out)) decoded.push_back(out.ToBytes());
    ASSERT_EQ(decoded.size(), bodies.size()) << "split at " << split;
    for (size_t i = 0; i < bodies.size(); ++i) EXPECT_EQ(decoded[i], bodies[i]);
    EXPECT_EQ(reader.frames_decoded(), bodies.size());
  }
}

TEST(RtFrame, OversizedLengthPrefixIsTypedErrorAndPoisons) {
  FrameReader reader(/*max_frame=*/64);
  Bytes header(kFrameHeaderBytes, 0);
  const uint32_t huge = 65;  // one past the cap
  std::memcpy(header.data(), &huge, 4);

  const Status fed = reader.Feed(header.data(), header.size());
  EXPECT_EQ(fed.code(), StatusCode::kCorruption);
  EXPECT_TRUE(reader.failed());
  EXPECT_EQ(reader.buffered(), 0u) << "poisoned reader must drop its buffers";

  // Poisoned: further feeds keep failing, frames never appear.
  const Bytes good = EncodeFrame(MakeBody(8));
  EXPECT_EQ(reader.Feed(good.data(), good.size()).code(),
            StatusCode::kCorruption);
  Payload out;
  EXPECT_FALSE(reader.Next(&out));
}

TEST(RtFrame, GarbagePrefixRejectedBeforeBodyArrives) {
  // "GET / HTTP..." as a length prefix decodes to ~0x20544547 bytes — the
  // cap check must fire from the header alone, without buffering a body.
  const char* garbage = "GET / HTTP/1.1\r\n\r\n";
  FrameReader reader;
  const Status fed = reader.Feed(reinterpret_cast<const uint8_t*>(garbage),
                                 std::strlen(garbage));
  EXPECT_EQ(fed.code(), StatusCode::kCorruption);
  EXPECT_TRUE(reader.failed());
}

TEST(RtFrame, CrcMismatchIsTypedError) {
  Bytes frame = EncodeFrame(MakeBody(32));
  frame[kFrameHeaderBytes + 5] ^= 0x01;  // flip one body bit
  FrameReader reader;
  const Status fed = reader.Feed(frame.data(), frame.size());
  EXPECT_EQ(fed.code(), StatusCode::kCorruption);
  EXPECT_TRUE(reader.failed());
}

TEST(RtFrame, CorruptLengthSmallerThanBodyMisframes) {
  // A corrupted length that still passes the cap check frames the wrong
  // byte range; the CRC catches it.
  const Bytes body = MakeBody(32);
  Bytes frame = EncodeFrame(body);
  const uint32_t wrong = 16;
  std::memcpy(frame.data(), &wrong, 4);
  FrameReader reader;
  EXPECT_EQ(reader.Feed(frame.data(), frame.size()).code(),
            StatusCode::kCorruption);
}

TEST(RtFrame, MidFrameDisconnectIsTorn) {
  const Bytes frame = EncodeFrame(MakeBody(100));
  for (const size_t cut : {1u, 4u, 8u, 50u, 107u}) {
    FrameReader reader;
    ASSERT_TRUE(reader.Feed(frame.data(), cut).ok());
    const Status closed = reader.OnPeerClose();
    EXPECT_EQ(closed.code(), StatusCode::kCorruption) << "cut at " << cut;
  }
  // On a frame boundary the close is clean.
  FrameReader reader;
  ASSERT_TRUE(reader.Feed(frame.data(), frame.size()).ok());
  EXPECT_TRUE(reader.OnPeerClose().ok());
}

TEST(RtFrame, MaxFrameBoundaryExact) {
  FrameReader reader(/*max_frame=*/64);
  const Bytes frame = EncodeFrame(MakeBody(64));  // exactly at the cap
  ASSERT_TRUE(reader.Feed(frame.data(), frame.size()).ok());
  Payload out;
  ASSERT_TRUE(reader.Next(&out));
  EXPECT_EQ(out.size(), 64u);
}

TEST(RtFrame, LongStreamStaysCompact) {
  FrameReader reader;
  const Bytes frame = EncodeFrame(MakeBody(200));
  Payload out;
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(reader.Feed(frame.data(), frame.size()).ok());
    ASSERT_TRUE(reader.Next(&out));
    ASSERT_EQ(reader.buffered(), 0u);
  }
  EXPECT_EQ(reader.frames_decoded(), 1000u);
}

TEST(RtFrame, HelloRoundTrip) {
  const Hello hello{7, 0xfeedbeefcafe1234ULL};
  const Bytes frame = EncodeHello(hello);

  FrameReader reader;
  ASSERT_TRUE(reader.Feed(frame.data(), frame.size()).ok());
  Payload body;
  ASSERT_TRUE(reader.Next(&body));

  const Result<Hello> decoded = DecodeHello(body.data(), body.size());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->sender, 7);
  EXPECT_EQ(decoded->fingerprint, 0xfeedbeefcafe1234ULL);
}

TEST(RtFrame, HelloRejectsWrongMagicAndTruncation) {
  const Bytes frame = EncodeHello(Hello{1, 42});
  FrameReader reader;
  ASSERT_TRUE(reader.Feed(frame.data(), frame.size()).ok());
  Payload received;
  ASSERT_TRUE(reader.Next(&received));
  const Bytes body = received.ToBytes();

  Bytes wrong_magic = body;
  wrong_magic[0] ^= 0xff;
  EXPECT_EQ(DecodeHello(wrong_magic).status().code(), StatusCode::kCorruption);

  Bytes truncated(body.begin(), body.end() - 3);
  EXPECT_FALSE(DecodeHello(truncated).ok());

  Bytes extended = body;
  extended.push_back(0);
  EXPECT_FALSE(DecodeHello(extended).ok());

  // A non-HELLO body is rejected, not misinterpreted.
  EXPECT_FALSE(DecodeHello(MakeBody(17)).ok());
}

}  // namespace
}  // namespace rt
}  // namespace seemore
