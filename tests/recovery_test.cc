// Crash/restart recovery end to end: the kill-restart twins (a replica
// restored from its durable WAL + snapshots must commit identically to one
// that rejoined with its memory intact), torn-write injection at every
// offset of the live WAL's last segment, the typed mid-log corruption
// refusal, power-loss fallback to an older snapshot, and restart across
// every protocol family.

#include <gtest/gtest.h>

#include "scenario/engine.h"
#include "scenario/registry.h"
#include "storage/file_store.h"
#include "tests/test_util.h"
#include "util/logging.h"

namespace seemore {
namespace {

using scenario::ApplyQuickBudgets;
using scenario::FindScenario;
using scenario::RunScenario;
using scenario::ScenarioReport;
using scenario::ScenarioSpec;

ScenarioReport RunRegistryScenario(const std::string& name) {
  Result<ScenarioSpec> spec = FindScenario(name);
  SEEMORE_CHECK(spec.ok()) << spec.status().ToString();
  ApplyQuickBudgets(*spec);
  Result<ScenarioReport> report = RunScenario(*spec);
  SEEMORE_CHECK(report.ok()) << report.status().ToString();
  return *std::move(report);
}

/// The acceptance gate for durable recovery: under a fixed seed, the
/// kill-and-restart run and its kill-and-rejoin twin must agree on every
/// verdict and end with every replica at the same execution frontier and
/// state digest. Restoring from disk may not change history.
void ExpectTwinRuns(const std::string& restart_name,
                    const std::string& rejoin_name) {
  const ScenarioReport restarted = RunRegistryScenario(restart_name);
  const ScenarioReport rejoined = RunRegistryScenario(rejoin_name);

  EXPECT_TRUE(restarted.agreement.ok()) << restarted.agreement.ToString();
  EXPECT_TRUE(restarted.convergence.ok()) << restarted.convergence.ToString();
  EXPECT_TRUE(rejoined.agreement.ok());
  EXPECT_TRUE(rejoined.convergence.ok());

  EXPECT_EQ(restarted.result.completed, rejoined.result.completed);
  ASSERT_EQ(restarted.replicas.size(), rejoined.replicas.size());
  for (size_t i = 0; i < restarted.replicas.size(); ++i) {
    EXPECT_EQ(restarted.replicas[i].last_executed,
              rejoined.replicas[i].last_executed)
        << "replica " << i;
    EXPECT_EQ(restarted.replicas[i].state_digest,
              rejoined.replicas[i].state_digest)
        << "replica " << i;
  }
}

TEST(RecoveryTest, KillRestartPrimaryCommitsIdenticallyToRejoinTwin) {
  ExpectTwinRuns("kill-restart-primary", "kill-rejoin-primary");
}

TEST(RecoveryTest, KillRestartBackupCommitsIdenticallyToRejoinTwin) {
  ExpectTwinRuns("kill-restart-backup", "kill-rejoin-backup");
}

TEST(RecoveryTest, WalCorruptionRefusalScenarioLeavesReplicaDead) {
  const ScenarioReport report =
      RunRegistryScenario("wal-corruption-refusal");
  EXPECT_TRUE(report.ok());
  bool saw_refusal = false;
  for (const scenario::AppliedEvent& event : report.events) {
    if (event.description.find("refused") != std::string::npos) {
      saw_refusal = true;
      EXPECT_NE(event.description.find("Corruption"), std::string::npos)
          << event.description;
    }
  }
  EXPECT_TRUE(saw_refusal);
  // The replica with the poisoned log never came back; the cluster
  // converged without it.
  EXPECT_TRUE(report.replicas[2].crashed);
  EXPECT_FALSE(report.replicas[0].crashed);
}

TEST(RecoveryTest, PowerLossScenarioRestoresAndConverges) {
  const ScenarioReport report = RunRegistryScenario("power-loss-checkpoint");
  EXPECT_TRUE(report.ok());
  bool saw_restore = false;
  for (const scenario::AppliedEvent& event : report.events) {
    if (event.description.find("restored from snapshot") !=
        std::string::npos) {
      saw_restore = true;
    }
  }
  EXPECT_TRUE(saw_restore);
  EXPECT_FALSE(report.replicas[1].crashed);
}

/// Build a durable Lion cluster, run traffic, crash a replica, and return
/// the cluster (the caller probes the crashed replica's disk image).
struct TornWriteRig {
  explicit TornWriteRig(int victim) {
    ClusterOptions options =
        testing::SeeMoReOptions(SeeMoReMode::kLion, 1, 1, /*seed=*/9);
    options.config.checkpoint_period = 16;
    options.durability.enabled = true;
    options.durability.fsync_interval = 4;
    options.durability.segment_bytes = 8 * 1024;
    cluster = std::make_unique<Cluster>(options);
    testing::RunBurst(*cluster, 4, Millis(250));
    cluster->Crash(victim);
  }
  std::unique_ptr<Cluster> cluster;
};

TEST(RecoveryTest, TornWriteAtEveryOffsetOfLastSegmentRecoversOrRefuses) {
  // The ISSUE's acceptance probe: truncate the crashed replica's WAL at
  // EVERY offset of its last segment. Every probe must recover (a torn
  // tail: commits are a prefix of the baseline) — truncation loses bytes,
  // it never fabricates them, so the typed-corruption path must not fire.
  TornWriteRig rig(/*victim=*/2);
  storage::MemMedium* disk = rig.cluster->medium(2);
  const std::vector<std::string> segments = disk->List("wal-");
  ASSERT_FALSE(segments.empty());
  const std::string& last = segments.back();
  const uint64_t size = *disk->SizeOf(last);
  ASSERT_GT(size, 100u);

  Result<RecoveredImage> baseline = storage::FileDurableStore::Recover(*disk);
  ASSERT_TRUE(baseline.ok());
  const size_t full_commits = baseline->commits.size();
  ASSERT_GT(full_commits, 0u);

  for (uint64_t cut = 0; cut < size; ++cut) {
    std::unique_ptr<storage::MemMedium> probe = disk->Clone();
    ASSERT_TRUE(probe->TruncateTo(last, cut).ok());
    Result<RecoveredImage> image = storage::FileDurableStore::Recover(*probe);
    ASSERT_TRUE(image.ok()) << "cut at " << cut << ": "
                            << image.status().ToString();
    ASSERT_LE(image->commits.size(), full_commits);
    for (size_t i = 0; i < image->commits.size(); ++i) {
      ASSERT_EQ(image->commits[i].first, baseline->commits[i].first)
          << "cut at " << cut;
    }
  }
}

TEST(RecoveryTest, BitFlipAtEveryByteOfLastSegmentRecoversOrRefusesTyped) {
  // One flipped bit per byte position: recovery must either truncate to a
  // clean commit prefix or refuse with kCorruption. Nothing else — no
  // crash, no reordered or invented commits.
  TornWriteRig rig(/*victim=*/2);
  storage::MemMedium* disk = rig.cluster->medium(2);
  const std::vector<std::string> segments = disk->List("wal-");
  const std::string& last = segments.back();
  const uint64_t size = *disk->SizeOf(last);

  Result<RecoveredImage> baseline = storage::FileDurableStore::Recover(*disk);
  ASSERT_TRUE(baseline.ok());

  int refusals = 0;
  for (uint64_t offset = 0; offset < size; ++offset) {
    std::unique_ptr<storage::MemMedium> probe = disk->Clone();
    ASSERT_TRUE(probe->FlipBit(last, offset,
                               static_cast<int>(offset % 8)).ok());
    Result<RecoveredImage> image = storage::FileDurableStore::Recover(*probe);
    if (!image.ok()) {
      ASSERT_EQ(image.status().code(), StatusCode::kCorruption)
          << "offset " << offset;
      ++refusals;
      continue;
    }
    ASSERT_LE(image->commits.size(), baseline->commits.size());
    for (size_t i = 0; i < image->commits.size(); ++i) {
      ASSERT_EQ(image->commits[i].first, baseline->commits[i].first)
          << "offset " << offset;
    }
  }
  // Flips before the final record must refuse (later intact frames prove
  // corruption); only flips in the very tail truncate.
  EXPECT_GT(refusals, 0);
}

TEST(RecoveryTest, RestartRefusedOnTamperedMidLogThenReplicaStaysDown) {
  TornWriteRig rig(/*victim=*/2);
  Cluster& cluster = *rig.cluster;
  // Flip a bit far from the tail: guaranteed mid-log damage.
  ASSERT_TRUE(cluster.CorruptWalTail(2, /*offset_from_end=*/3000).ok());
  Result<RestartOutcome> outcome = cluster.Restart(2);
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kCorruption);
  EXPECT_TRUE(cluster.replica(2)->crashed());
  // The cluster keeps running without the refused replica.
  const uint64_t before = cluster.seemore(0)->last_executed();
  testing::RunBurst(cluster, 4, Millis(200));
  EXPECT_GT(cluster.seemore(0)->last_executed(), before);
  EXPECT_TRUE(cluster.CheckAgreement().ok());
}

/// Crash -> traffic -> restart-from-disk -> traffic: the restarted replica
/// must resume from its durable image, catch up past the pre-crash
/// frontier, and agree with everyone.
template <typename GetExecuted>
void CrashRestartCatchUp(Cluster& cluster, int victim,
                         GetExecuted executed_of) {
  testing::RunBurst(cluster, 4, Millis(250));
  cluster.Crash(victim);
  testing::RunBurst(cluster, 4, Millis(250));
  const uint64_t progress = executed_of(0);
  ASSERT_GT(progress, 20u);

  Result<RestartOutcome> outcome = cluster.Restart(victim);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  // The durable image held real state: a snapshot, replayed commits, or
  // both.
  EXPECT_GT(outcome->snapshot_seq + outcome->replayed_commits, 0u);

  testing::RunBurst(cluster, 4, Millis(400));
  cluster.sim().RunUntil(cluster.sim().now() + Millis(200));
  EXPECT_GT(executed_of(victim), progress);
  EXPECT_TRUE(cluster.CheckAgreement().ok());
}

ClusterOptions WithDurability(ClusterOptions options) {
  options.config.checkpoint_period = 16;
  options.durability.enabled = true;
  options.durability.fsync_interval = 1;
  return options;
}

TEST(RecoveryTest, LionPublicReplicaRestartsFromDisk) {
  Cluster cluster(
      WithDurability(testing::SeeMoReOptions(SeeMoReMode::kLion, 1, 1)));
  CrashRestartCatchUp(cluster, /*victim=*/4, [&](int i) {
    return cluster.seemore(i)->last_executed();
  });
}

TEST(RecoveryTest, PbftReplicaRestartsFromDisk) {
  Cluster cluster(WithDurability(testing::BftOptions(1)));
  CrashRestartCatchUp(cluster, /*victim=*/3, [&](int i) {
    return cluster.pbft(i)->last_executed();
  });
}

TEST(RecoveryTest, PaxosReplicaRestartsFromDisk) {
  Cluster cluster(WithDurability(testing::CftOptions(1)));
  CrashRestartCatchUp(cluster, /*victim=*/2, [&](int i) {
    return cluster.paxos(i)->last_executed();
  });
}

TEST(RecoveryTest, SUpRightReplicaRestartsFromDisk) {
  Cluster cluster(WithDurability(testing::SUpRightOptions(1, 1)));
  CrashRestartCatchUp(cluster, /*victim=*/3, [&](int i) {
    return cluster.pbft(i)->last_executed();
  });
}

TEST(RecoveryTest, PowerLossFallsBackToOlderSnapshotAndCatchesUp) {
  // Batched fsyncs leave a window: after power loss the newest snapshot may
  // be gone or torn, but an older durable one plus the surviving log must
  // still restore a consistent replica.
  ClusterOptions options =
      testing::SeeMoReOptions(SeeMoReMode::kLion, 1, 1, /*seed=*/11);
  options.config.checkpoint_period = 16;
  options.durability.enabled = true;
  options.durability.fsync_interval = 64;
  Cluster cluster(options);
  testing::RunBurst(cluster, 4, Millis(300));
  cluster.PowerLoss(4);
  testing::RunBurst(cluster, 4, Millis(200));
  const uint64_t progress = cluster.seemore(0)->last_executed();
  ASSERT_GT(progress, 20u);

  Result<RestartOutcome> outcome = cluster.Restart(4);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();

  testing::RunBurst(cluster, 4, Millis(400));
  cluster.sim().RunUntil(cluster.sim().now() + Millis(200));
  EXPECT_GT(cluster.seemore(4)->last_executed(), progress);
  EXPECT_TRUE(cluster.CheckAgreement().ok());
}

TEST(RecoveryTest, RestartRequiresDurabilityAndACrashedTarget) {
  // Typed refusals, not CHECK failures: restart without durability...
  ClusterOptions plain = testing::SeeMoReOptions(SeeMoReMode::kLion, 1, 1);
  Cluster no_disk(plain);
  no_disk.Crash(3);
  EXPECT_EQ(no_disk.Restart(3).status().code(),
            StatusCode::kFailedPrecondition);

  // ...and restart of a live replica.
  Cluster durable(
      WithDurability(testing::SeeMoReOptions(SeeMoReMode::kLion, 1, 1)));
  EXPECT_EQ(durable.Restart(3).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(durable.TruncateWalTail(3, 10).code(),
            StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace seemore
