// CFT (Paxos) baseline integration tests: normal case, leader failure,
// checkpoint GC, state transfer, message loss.

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace seemore {
namespace {

using testing::CftOptions;
using testing::RunBurst;
using testing::SubmitAndWait;

TEST(PaxosTest, CommitsSingleRequest) {
  Cluster cluster(CftOptions(/*f=*/1));
  SimClient* client = cluster.AddClient();
  auto result = SubmitAndWait(cluster, client, MakePut("k", "v"));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(ParseKvReply(*result).status, KvResult::kOk);

  auto get = SubmitAndWait(cluster, client, MakeGet("k"));
  ASSERT_TRUE(get.ok());
  EXPECT_EQ(ParseKvReply(*get).value, "v");
}

TEST(PaxosTest, AllReplicasExecuteCommittedRequests) {
  Cluster cluster(CftOptions(1));
  SimClient* client = cluster.AddClient();
  for (int i = 0; i < 10; ++i) {
    auto r = SubmitAndWait(cluster, client,
                           MakePut("k" + std::to_string(i), "v"));
    ASSERT_TRUE(r.ok());
  }
  cluster.sim().RunUntil(cluster.sim().now() + Millis(50));
  EXPECT_TRUE(cluster.CheckAgreement().ok());
  for (int i = 0; i < cluster.n(); ++i) {
    EXPECT_EQ(cluster.paxos(i)->last_executed(),
              cluster.paxos(0)->last_executed())
        << "replica " << i;
  }
  EXPECT_TRUE(cluster.CheckConvergence({0, 1, 2}).ok());
}

TEST(PaxosTest, ConcurrentClientsAgree) {
  Cluster cluster(CftOptions(2));
  const uint64_t completed = RunBurst(cluster, 8, Millis(300));
  EXPECT_GT(completed, 100u);
  EXPECT_TRUE(cluster.CheckAgreement().ok());
}

TEST(PaxosTest, BackupCrashHarmless) {
  Cluster cluster(CftOptions(1));
  cluster.Crash(2);  // backup
  const uint64_t completed = RunBurst(cluster, 4, Millis(200));
  EXPECT_GT(completed, 50u);
  EXPECT_TRUE(cluster.CheckAgreement().ok());
}

TEST(PaxosTest, LeaderCrashTriggersViewChange) {
  Cluster cluster(CftOptions(1));
  SimClient* client = cluster.AddClient();
  auto warm = SubmitAndWait(cluster, client, MakePut("a", "1"));
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(cluster.paxos(0)->IsLeader());

  cluster.Crash(0);
  auto after = SubmitAndWait(cluster, client, MakePut("b", "2"));
  ASSERT_TRUE(after.ok()) << after.status().ToString();

  // A surviving replica moved to a higher view with a live leader.
  EXPECT_GT(cluster.paxos(1)->view(), 0u);
  EXPECT_TRUE(cluster.CheckAgreement().ok());

  // The new leader still serves reads written before the crash.
  auto get = SubmitAndWait(cluster, client, MakeGet("a"));
  ASSERT_TRUE(get.ok());
  EXPECT_EQ(ParseKvReply(*get).value, "1");
}

TEST(PaxosTest, RepeatedLeaderCrashes) {
  Cluster cluster(CftOptions(2));  // n=5 tolerates 2 crashes
  SimClient* client = cluster.AddClient();
  ASSERT_TRUE(SubmitAndWait(cluster, client, MakePut("x", "0")).ok());
  cluster.Crash(0);
  ASSERT_TRUE(SubmitAndWait(cluster, client, MakePut("x", "1")).ok());
  cluster.Crash(1);
  auto final_put = SubmitAndWait(cluster, client, MakePut("x", "2"));
  ASSERT_TRUE(final_put.ok());
  auto get = SubmitAndWait(cluster, client, MakeGet("x"));
  ASSERT_TRUE(get.ok());
  EXPECT_EQ(ParseKvReply(*get).value, "2");
  EXPECT_TRUE(cluster.CheckAgreement().ok());
}

TEST(PaxosTest, CheckpointsAdvanceAndGarbageCollect) {
  ClusterOptions options = CftOptions(1);
  options.config.checkpoint_period = 8;
  Cluster cluster(options);
  RunBurst(cluster, 4, Millis(300));
  cluster.sim().RunUntil(cluster.sim().now() + Millis(50));
  for (int i = 0; i < cluster.n(); ++i) {
    EXPECT_GT(cluster.paxos(i)->stable_checkpoint(), 0u) << "replica " << i;
  }
  EXPECT_TRUE(cluster.CheckAgreement().ok());
}

TEST(PaxosTest, LaggingReplicaCatchesUpViaStateTransfer) {
  ClusterOptions options = CftOptions(1);
  options.config.checkpoint_period = 8;
  Cluster cluster(options);
  cluster.Crash(2);
  RunBurst(cluster, 4, Millis(300));
  const uint64_t leader_executed = cluster.paxos(0)->last_executed();
  ASSERT_GT(leader_executed, 20u);

  cluster.Recover(2);
  // New traffic makes the cluster checkpoint again; the recovering node
  // state-transfers to the new stable point.
  RunBurst(cluster, 4, Millis(400));
  cluster.sim().RunUntil(cluster.sim().now() + Millis(100));
  EXPECT_GT(cluster.paxos(2)->last_executed(), leader_executed);
  EXPECT_TRUE(cluster.CheckAgreement().ok());
}

TEST(PaxosTest, ToleratesMessageLoss) {
  ClusterOptions options = CftOptions(1);
  options.net.drop_probability = 0.03;
  Cluster cluster(options);
  const uint64_t completed = RunBurst(cluster, 4, Millis(400));
  EXPECT_GT(completed, 20u);
  EXPECT_TRUE(cluster.CheckAgreement().ok());
}

TEST(PaxosTest, ExactlyOnceUnderRetransmission) {
  // Force client retransmissions with heavy loss; the counter-like CAS
  // pattern would expose double execution.
  ClusterOptions options = CftOptions(1);
  options.net.drop_probability = 0.10;
  options.client_retransmit_timeout = Millis(20);
  Cluster cluster(options);
  SimClient* client = cluster.AddClient();
  ASSERT_TRUE(SubmitAndWait(cluster, client, MakePut("ctr", "0")).ok());
  for (int i = 0; i < 10; ++i) {
    auto cas = SubmitAndWait(
        cluster, client,
        MakeCas("ctr", std::to_string(i), std::to_string(i + 1)));
    ASSERT_TRUE(cas.ok()) << "iteration " << i;
    // Under exactly-once semantics every CAS succeeds exactly once.
    EXPECT_EQ(ParseKvReply(*cas).status, KvResult::kOk) << "iteration " << i;
  }
  auto get = SubmitAndWait(cluster, client, MakeGet("ctr"));
  ASSERT_TRUE(get.ok());
  EXPECT_EQ(ParseKvReply(*get).value, "10");
}

}  // namespace
}  // namespace seemore
