// SeeMoRe Peacock mode (§5.3): PBFT among the 3m+1 proxies with an
// untrusted primary; the trusted transferer drives view changes; passive
// nodes execute after m+1 INFORMs.

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace seemore {
namespace {

using testing::RunBurst;
using testing::SeeMoReOptions;
using testing::SubmitAndWait;

TEST(PeacockTest, CommitsSingleRequest) {
  Cluster cluster(SeeMoReOptions(SeeMoReMode::kPeacock, 1, 1));
  SimClient* client = cluster.AddClient();
  auto result = SubmitAndWait(cluster, client, MakePut("k", "v"));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(ParseKvReply(*result).status, KvResult::kOk);
  // The Peacock primary lives in the public cloud.
  EXPECT_FALSE(
      cluster.config().IsTrusted(cluster.seemore(2)->current_primary()));
}

TEST(PeacockTest, PrivateNodesExecuteViaInforms) {
  Cluster cluster(SeeMoReOptions(SeeMoReMode::kPeacock, 1, 1));
  SimClient* client = cluster.AddClient();
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(
        SubmitAndWait(cluster, client, MakePut("k" + std::to_string(i), "v"))
            .ok());
  }
  cluster.sim().RunUntil(cluster.sim().now() + Millis(100));
  EXPECT_EQ(cluster.seemore(0)->last_executed(),
            cluster.seemore(2)->last_executed());
  EXPECT_EQ(cluster.seemore(1)->last_executed(),
            cluster.seemore(2)->last_executed());
  EXPECT_TRUE(cluster.CheckAgreement().ok());
}

TEST(PeacockTest, ToleratesByzantineProxy) {
  Cluster cluster(SeeMoReOptions(SeeMoReMode::kPeacock, 1, 1));
  // View-0 proxies are {2,3,4,5} with primary 2; flag a non-primary proxy.
  cluster.SetByzantine(4, kByzWrongVotes);
  const uint64_t completed = RunBurst(cluster, 4, Millis(300));
  EXPECT_GT(completed, 30u);
  EXPECT_TRUE(cluster.CheckAgreement().ok());
}

TEST(PeacockTest, PrimaryCrashTransfererRunsViewChange) {
  Cluster cluster(SeeMoReOptions(SeeMoReMode::kPeacock, 1, 1));
  SimClient* client = cluster.AddClient();
  ASSERT_TRUE(SubmitAndWait(cluster, client, MakePut("a", "1")).ok());
  const PrincipalId primary = cluster.seemore(0)->current_primary();
  cluster.Crash(primary);
  auto after = SubmitAndWait(cluster, client, MakePut("b", "2"), Seconds(10));
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_GT(cluster.seemore(0)->view(), 0u);
  EXPECT_EQ(cluster.seemore(0)->mode(), SeeMoReMode::kPeacock);
  // The new primary is the next public node in rotation.
  EXPECT_FALSE(
      cluster.config().IsTrusted(cluster.seemore(0)->current_primary()));
  auto get = SubmitAndWait(cluster, client, MakeGet("a"));
  ASSERT_TRUE(get.ok());
  EXPECT_EQ(ParseKvReply(*get).value, "1");
  EXPECT_TRUE(cluster.CheckAgreement().ok());
}

TEST(PeacockTest, EquivocatingPrimaryRecovered) {
  Cluster cluster(SeeMoReOptions(SeeMoReMode::kPeacock, 1, 1));
  const PrincipalId primary = cluster.seemore(0)->current_primary();
  cluster.SetByzantine(primary, kByzEquivocate);
  SimClient* client = cluster.AddClient();
  auto result = SubmitAndWait(cluster, client, MakePut("k", "v"), Seconds(10));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(cluster.seemore(0)->view(), 0u);  // view change happened
  EXPECT_TRUE(cluster.CheckAgreement().ok());
}

TEST(PeacockTest, LyingProxyCannotFoolClients) {
  Cluster cluster(SeeMoReOptions(SeeMoReMode::kPeacock, 1, 1));
  cluster.SetByzantine(5, kByzLieToClients);
  SimClient* client = cluster.AddClient();
  ASSERT_TRUE(SubmitAndWait(cluster, client, MakePut("key", "honest")).ok());
  auto get = SubmitAndWait(cluster, client, MakeGet("key"));
  ASSERT_TRUE(get.ok());
  EXPECT_EQ(ParseKvReply(*get).value, "honest");
}

TEST(PeacockTest, QuorumCheckpointsAdvance) {
  ClusterOptions options = SeeMoReOptions(SeeMoReMode::kPeacock, 1, 1);
  options.config.checkpoint_period = 8;
  Cluster cluster(options);
  RunBurst(cluster, 4, Millis(300));
  cluster.sim().RunUntil(cluster.sim().now() + Millis(100));
  int advanced = 0;
  for (int i = 0; i < cluster.n(); ++i) {
    if (cluster.seemore(i)->stable_checkpoint() > 0) ++advanced;
  }
  EXPECT_GE(advanced, 4);
  EXPECT_TRUE(cluster.CheckAgreement().ok());
}

TEST(PeacockTest, ConcurrentClients) {
  Cluster cluster(SeeMoReOptions(SeeMoReMode::kPeacock, 1, 1));
  const uint64_t completed = RunBurst(cluster, 6, Millis(300));
  EXPECT_GT(completed, 50u);
  EXPECT_TRUE(cluster.CheckAgreement().ok());
}

}  // namespace
}  // namespace seemore
