// Fixed-seed golden test for the simulation engine.
//
// Runs a canned SeeMoRe scenario (drops + duplicates on, checkpoints
// crossing, both Lion and Peacock) and asserts the full observable outcome
// — executed event count, committed/executed totals, network counters and
// the exact commit sequence — against values captured from the seed engine
// (commit e32ed6a, before the zero-copy/pooled-heap/digest-memo rework).
//
// This is the contract the perf work must honour: payload sharing, the
// pooled event heap, lazy cancellation and the digest/verify memo may only
// change *host* CPU time. If any of them leaks into simulated time (e.g. a
// memo skipping a Charge(), or the heap reordering equal-time events), these
// numbers shift and this test fails. The second run in each case replays the
// scenario with the process-wide memo already warm, pinning down that cache
// hits and misses are observationally identical.

#include <gtest/gtest.h>

#include <string>

#include "tests/test_util.h"

namespace seemore {
namespace {

struct GoldenSnapshot {
  uint64_t executed_events;
  uint64_t total_executed;
  uint64_t batches_committed;
  uint64_t messages_handled;
  uint64_t net_messages;
  uint64_t net_bytes;
  uint64_t net_dropped;
  std::string commit_chain;
};

/// The canned scenario. Any change here invalidates the golden constants —
/// capture new ones from a trusted engine build before editing.
GoldenSnapshot RunScenario(SeeMoReMode mode, uint64_t seed) {
  ClusterOptions options;
  options.config.kind = ProtocolKind::kSeeMoRe;
  options.config.c = 1;
  options.config.m = 1;
  options.config.s = 2;
  options.config.p = 4;
  options.config.initial_mode = mode;
  options.config.batch_max = 32;
  options.config.checkpoint_period = 64;
  options.seed = seed;
  options.net.drop_probability = 0.01;
  options.net.duplicate_probability = 0.01;
  Cluster cluster(options);
  for (int i = 0; i < 6; ++i) cluster.AddClient();
  OpFactory ops = KvWorkload(99, 128, 0.5);
  for (int i = 0; i < cluster.num_clients(); ++i) cluster.client(i)->Start(ops);
  cluster.sim().RunUntil(Millis(600));
  for (int i = 0; i < cluster.num_clients(); ++i) cluster.client(i)->Stop();
  cluster.sim().RunUntil(Millis(900));
  EXPECT_EQ(cluster.sim().now(), Millis(900));
  EXPECT_TRUE(cluster.CheckAgreement().ok());

  GoldenSnapshot snap;
  snap.executed_events = cluster.sim().executed_events();
  snap.total_executed = cluster.TotalExecuted();
  snap.batches_committed = 0;
  snap.messages_handled = 0;
  for (int i = 0; i < cluster.n(); ++i) {
    snap.batches_committed += cluster.replica(i)->stats().batches_committed;
    snap.messages_handled += cluster.replica(i)->stats().messages_handled;
  }
  snap.net_messages = cluster.net().counters().messages;
  snap.net_bytes = cluster.net().counters().bytes;
  snap.net_dropped = cluster.net().counters().dropped;

  // Fold replica 0's per-sequence executed digests into one chain: the
  // commit *order*, not just the final state.
  Digest chain;
  const auto& digests = cluster.seemore(0)->exec().executed_digests();
  for (uint64_t seq = digests.floor(); !digests.empty() && seq <= digests.ceil();
       ++seq) {
    Encoder enc;
    enc.PutRaw(chain.data(), Digest::kSize);
    enc.PutU64(seq);
    enc.PutRaw(digests.at(seq).data(), Digest::kSize);
    chain = Digest::Of(enc.bytes());
  }
  snap.commit_chain = chain.ToHex();
  return snap;
}

void ExpectGolden(const GoldenSnapshot& snap, const GoldenSnapshot& golden) {
  EXPECT_EQ(snap.executed_events, golden.executed_events);
  EXPECT_EQ(snap.total_executed, golden.total_executed);
  EXPECT_EQ(snap.batches_committed, golden.batches_committed);
  EXPECT_EQ(snap.messages_handled, golden.messages_handled);
  EXPECT_EQ(snap.net_messages, golden.net_messages);
  EXPECT_EQ(snap.net_bytes, golden.net_bytes);
  EXPECT_EQ(snap.net_dropped, golden.net_dropped);
  EXPECT_EQ(snap.commit_chain, golden.commit_chain);
}

TEST(EngineDeterminismTest, LionMatchesSeedEngineGolden) {
  const GoldenSnapshot golden{
      98399,    9477,  13397, 48000, 50311, 5030561, 475,
      "b8196895f8b1696a7f076954676a2c8e158a27176d9dd902fefdfd3d5321a02d"};
  ExpectGolden(RunScenario(SeeMoReMode::kLion, 42), golden);
  // Replay with the process-wide digest/verify memo warm: bit-identical.
  ExpectGolden(RunScenario(SeeMoReMode::kLion, 42), golden);
}

TEST(EngineDeterminismTest, PeacockMatchesSeedEngineGolden) {
  // Re-captured when NEW-VIEW relay (kSmNewViewRequest) landed, and again
  // when the NEW-VIEW header signature grew to cover the full entry sets
  // (EntrySetDigest: extra hash/sign charges) and relay responses gained a
  // per-peer rate limit. Both shifted the cost/traffic counters; the
  // semantic columns (total_executed, batches_committed, commit_chain)
  // stayed bit-identical to the seed engine throughout.
  const GoldenSnapshot golden{
      61279,    1186,  1199, 30209, 31013, 7025251, 323,
      "eae82934affc498f3ac761cd54d283e50230cf0742dc83ebb66f5642f14fb76d"};
  ExpectGolden(RunScenario(SeeMoReMode::kPeacock, 1337), golden);
  ExpectGolden(RunScenario(SeeMoReMode::kPeacock, 1337), golden);
}

}  // namespace
}  // namespace seemore
