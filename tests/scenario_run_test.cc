// scenario::RunScenario behaviour: fixed-seed reproducibility (the same
// spec must produce a bit-identical ScenarioReport run-to-run), schedule
// execution (crash/switch/partition effects actually land), sweep
// semantics, hooks, and the engine's rejection of invalid specs.

#include <gtest/gtest.h>

#include "scenario/builder.h"
#include "scenario/engine.h"
#include "scenario/registry.h"

namespace seemore {
namespace scenario {
namespace {

/// Small but non-trivial run: Lion base case, a KV workload, one primary
/// crash mid-measurement. Finishes in well under a second of host time.
ScenarioSpec SmallScenario() {
  ScenarioBuilder builder;
  builder.Name("golden-small")
      .SeeMoRe(SeeMoReMode::kLion, 1, 1)
      .Seed(1234)
      .Clients(8)
      .Kv(64, 0.5)
      .CrashPrimaryAt(Millis(80))
      .Warmup(Millis(40))
      .Measure(Millis(160))
      .Drain(Millis(100));
  return builder.spec();
}

TEST(ScenarioRunTest, FixedSeedReportIsBitIdenticalRunToRun) {
  Result<ScenarioReport> first = RunScenario(SmallScenario());
  Result<ScenarioReport> second = RunScenario(SmallScenario());
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());

  // The scenario did real work...
  EXPECT_GT(first->result.completed, 100u);
  EXPECT_GT(first->total_executed, 0u);
  EXPECT_TRUE(first->agreement.ok());
  ASSERT_EQ(first->events.size(), 1u);
  EXPECT_NE(first->events[0].description.find("crash"), std::string::npos);

  // ...and reproduces exactly: the golden criterion is the serialized
  // report with host time stripped (wall_time_ms is real elapsed time, the
  // one legitimately non-deterministic field), which covers completed
  // counts, latencies, per-replica stats, network counters and CPU totals
  // in one comparison.
  EXPECT_EQ(first->DeterministicJson().Dump(2),
            second->DeterministicJson().Dump(2));
}

TEST(ScenarioRunTest, GoldenCommittedCountForRegistryScenario) {
  // Pin one registry scenario's headline numbers. This is intentionally a
  // change-detector: protocol or engine changes that shift the virtual
  // timeline must update it consciously (see DESIGN.md §7).
  Result<ScenarioSpec> spec = FindScenario("fig4-primary-crash");
  ASSERT_TRUE(spec.ok());
  Result<ScenarioReport> once = RunScenario(*spec);
  Result<ScenarioReport> again = RunScenario(*spec);
  ASSERT_TRUE(once.ok());
  EXPECT_GT(once->result.completed, 500u);
  EXPECT_TRUE(once->agreement.ok());
  // The crash-primary event resolved to a concrete replica.
  ASSERT_EQ(once->events.size(), 1u);
  EXPECT_NE(once->events[0].description.find("replica"), std::string::npos);
  EXPECT_EQ(once->DeterministicJson().Dump(), again->DeterministicJson().Dump());
}

TEST(ScenarioRunTest, CrashEventActuallyCrashes) {
  ScenarioBuilder builder;
  builder.Name("crash-one")
      .SeeMoRe(SeeMoReMode::kLion, 1, 1)
      .Seed(5)
      .Clients(4)
      .Echo(0, 0)
      .CrashAt(Millis(60), 5)
      .Warmup(Millis(20))
      .Measure(Millis(100));
  Result<ScenarioReport> report = RunScenario(builder.spec());
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->replicas[5].crashed);
  EXPECT_FALSE(report->replicas[0].crashed);
  EXPECT_TRUE(report->agreement.ok());
  EXPECT_GT(report->result.completed, 0u);
}

TEST(ScenarioRunTest, SwitchEventChangesMode) {
  ScenarioBuilder builder;
  builder.Name("switch-dog")
      .SeeMoRe(SeeMoReMode::kLion, 1, 1)
      .Seed(9)
      .Clients(4)
      .Echo(0, 0)
      .SwitchAt(Millis(60), SeeMoReMode::kDog)
      .Warmup(Millis(20))
      .Measure(Millis(200))
      .Drain(Millis(200))
      .CheckConvergence();
  SeeMoReMode final_mode = SeeMoReMode::kLion;
  ScenarioHooks hooks;
  hooks.on_finish = [&final_mode](Cluster& cluster) {
    final_mode = cluster.seemore(0)->mode();
  };
  Result<ScenarioReport> report = RunScenario(builder.spec(), hooks);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(final_mode, SeeMoReMode::kDog);
  EXPECT_TRUE(report->ok()) << report->agreement.ToString() << " / "
                            << report->convergence.ToString();
}

TEST(ScenarioRunTest, PartitionStallsAndHealRecovers) {
  // While the clouds are partitioned no Lion quorum (2m+c+1 = 4 > s = 2)
  // can form, so commits stall; after the heal the cluster catches up.
  ScenarioBuilder builder;
  builder.Name("partition-probe")
      .SeeMoRe(SeeMoReMode::kLion, 1, 1)
      .Seed(3)
      .Clients(4)
      .Echo(0, 0)
      .PartitionCloudsAt(Millis(60))
      .HealCloudsAt(Millis(160))
      .Warmup(Millis(20))
      .Measure(Millis(280))
      .Drain(Millis(300))
      .CheckConvergence()
      .Timeline(Millis(20));
  Result<ScenarioReport> report = RunScenario(builder.spec());
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->ok()) << report->agreement.ToString() << " / "
                            << report->convergence.ToString();
  // The partitioned window (buckets [3,8) = 60-160ms) is quiet compared to
  // the post-heal window.
  const double during = report->timeline.KreqsAt(4);
  double after = 0.0;
  for (size_t b = 9; b < report->timeline.buckets.size(); ++b) {
    after = std::max(after, report->timeline.KreqsAt(b));
  }
  EXPECT_GT(after, during);
  EXPECT_GT(report->result.completed, 0u);
}

TEST(ScenarioRunTest, SweepRunsOnePointPerPopulation) {
  ScenarioBuilder builder;
  builder.Name("sweep")
      .SeeMoRe(SeeMoReMode::kLion, 1, 1)
      .Seed(2)
      .Echo(0, 0)
      .Sweep({1, 4})
      .Warmup(Millis(20))
      .Measure(Millis(80));
  Result<std::vector<ScenarioReport>> reports = RunSweep(builder.spec());
  ASSERT_TRUE(reports.ok());
  ASSERT_EQ(reports->size(), 2u);
  EXPECT_EQ((*reports)[0].result.clients, 1);
  EXPECT_EQ((*reports)[1].result.clients, 4);
  // More clients, more completions (closed loop).
  EXPECT_GT((*reports)[1].result.completed, (*reports)[0].result.completed);
}

TEST(ScenarioRunTest, RejectsInvalidSpecBeforeBuildingAnything) {
  ScenarioBuilder builder;
  builder.SeeMoRe(SeeMoReMode::kLion, 1, 1).CrashAt(Millis(10), 99);
  Result<ScenarioReport> report = RunScenario(builder.spec());
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kInvalidArgument);

  Result<std::unique_ptr<Cluster>> cluster = MakeCluster(builder.spec());
  EXPECT_FALSE(cluster.ok());
}

TEST(ScenarioRunTest, HooksSeeLifecycle) {
  ScenarioBuilder builder;
  builder.Name("hooked")
      .SeeMoRe(SeeMoReMode::kLion, 1, 1)
      .Seed(11)
      .Clients(2)
      .Echo(0, 0)
      .CrashAt(Millis(50), 4)
      .Warmup(Millis(20))
      .Measure(Millis(60));
  int starts = 0, events = 0, finishes = 0;
  uint64_t completions = 0;
  ScenarioHooks hooks;
  hooks.on_start = [&](Cluster&) { ++starts; };
  hooks.on_event = [&](Cluster&, const ScenarioEvent& event, const Status&) {
    ++events;
    EXPECT_EQ(event.kind, EventKind::kCrash);
  };
  hooks.on_complete = [&](SimTime, SimTime) { ++completions; };
  hooks.on_finish = [&](Cluster&) { ++finishes; };
  Result<ScenarioReport> report = RunScenario(builder.spec(), hooks);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(starts, 1);
  EXPECT_EQ(events, 1);
  EXPECT_EQ(finishes, 1);
  EXPECT_GT(completions, 0u);
}

}  // namespace
}  // namespace scenario
}  // namespace seemore
