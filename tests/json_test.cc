// util/json.h: value semantics, parse/dump round trips, strict decoding.

#include <gtest/gtest.h>

#include "util/json.h"

namespace seemore {
namespace {

TEST(JsonTest, ScalarRoundTrips) {
  EXPECT_EQ(Json().Dump(), "null");
  EXPECT_EQ(Json(true).Dump(), "true");
  EXPECT_EQ(Json(false).Dump(), "false");
  EXPECT_EQ(Json(int64_t{-42}).Dump(), "-42");
  EXPECT_EQ(Json("hi \"there\"\n").Dump(), "\"hi \\\"there\\\"\\n\"");
  // Doubles keep a marker so they re-parse as doubles.
  EXPECT_EQ(Json(2.0).Dump(), "2.0");
  EXPECT_EQ(Json(0.25).Dump(), "0.25");
}

TEST(JsonTest, IntegersSurviveExactly) {
  const int64_t big = 9007199254740993;  // not representable as double
  Result<Json> parsed = Json::Parse(Json(big).Dump());
  ASSERT_TRUE(parsed.ok());
  ASSERT_TRUE(parsed->is_int());
  EXPECT_EQ(parsed->AsInt(), big);
}

TEST(JsonTest, ObjectPreservesInsertionOrder) {
  Json obj = Json::Object();
  obj.Set("zebra", 1);
  obj.Set("alpha", 2);
  obj.Set("mid", 3);
  EXPECT_EQ(obj.Dump(), "{\"zebra\":1,\"alpha\":2,\"mid\":3}");
  // Replacing a key keeps its position.
  obj.Set("alpha", 9);
  EXPECT_EQ(obj.Dump(), "{\"zebra\":1,\"alpha\":9,\"mid\":3}");
}

TEST(JsonTest, NestedRoundTrip) {
  const std::string text =
      R"({"a": [1, 2.5, "x", null, true], "b": {"c": -3, "d": []}})";
  Result<Json> parsed = Json::Parse(text);
  ASSERT_TRUE(parsed.ok());
  Result<Json> reparsed = Json::Parse(parsed->Dump(2));
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(*parsed, *reparsed);
  EXPECT_EQ(parsed->Find("a")->size(), 5u);
  EXPECT_DOUBLE_EQ(parsed->Find("a")->at(1).AsDouble(), 2.5);
  EXPECT_EQ(parsed->Find("b")->Find("c")->AsInt(), -3);
}

TEST(JsonTest, StringEscapes) {
  Result<Json> parsed = Json::Parse(R"("a\tb\u0041\\")");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->AsString(), "a\tbA\\");
}

TEST(JsonTest, ParseErrors) {
  EXPECT_FALSE(Json::Parse("").ok());
  EXPECT_FALSE(Json::Parse("{").ok());
  EXPECT_FALSE(Json::Parse("[1,]").ok());
  EXPECT_FALSE(Json::Parse("{\"a\":1} trailing").ok());
  EXPECT_FALSE(Json::Parse("{\"a\":1,\"a\":2}").ok());  // duplicate key
  EXPECT_FALSE(Json::Parse("{'a':1}").ok());            // wrong quotes
  EXPECT_FALSE(Json::Parse("nul").ok());
  EXPECT_FALSE(Json::Parse("1.2.3").ok());
  EXPECT_FALSE(Json::Parse("\"unterminated").ok());
  // Nesting bomb.
  std::string deep(100, '[');
  deep += std::string(100, ']');
  EXPECT_FALSE(Json::Parse(deep).ok());
}

TEST(JsonObjectReaderTest, TypedReadsAndDefaults) {
  Result<Json> parsed =
      Json::Parse(R"({"count": 7, "rate": 0.5, "name": "x", "on": true})");
  ASSERT_TRUE(parsed.ok());
  JsonObjectReader reader(*parsed);
  int count = 0;
  double rate = 0.0;
  std::string name;
  bool on = false;
  int64_t absent = 123;
  EXPECT_TRUE(reader.ReadInt("count", &count).ok());
  EXPECT_TRUE(reader.ReadDouble("rate", &rate).ok());
  EXPECT_TRUE(reader.ReadString("name", &name).ok());
  EXPECT_TRUE(reader.ReadBool("on", &on).ok());
  EXPECT_TRUE(reader.ReadInt("absent", &absent).ok());
  EXPECT_EQ(count, 7);
  EXPECT_DOUBLE_EQ(rate, 0.5);
  EXPECT_EQ(name, "x");
  EXPECT_TRUE(on);
  EXPECT_EQ(absent, 123);  // untouched
  EXPECT_TRUE(reader.Finish("test").ok());
}

TEST(JsonObjectReaderTest, RejectsOutOfRangeNarrowingReads) {
  Result<Json> parsed = Json::Parse(
      R"({"big": 4294967312, "neg": -1, "huge": 9223372036854775807})");
  ASSERT_TRUE(parsed.ok());
  {
    JsonObjectReader reader(*parsed);
    int out = 7;
    EXPECT_FALSE(reader.ReadInt("big", &out).ok());
    EXPECT_EQ(out, 7);  // untouched on failure
  }
  {
    JsonObjectReader reader(*parsed);
    uint32_t out = 7;
    EXPECT_FALSE(reader.ReadUint32("big", &out).ok());
    EXPECT_FALSE(reader.ReadUint32("neg", &out).ok());
  }
  {
    JsonObjectReader reader(*parsed);
    uint64_t out = 7;
    EXPECT_FALSE(reader.ReadUint64("neg", &out).ok());
    EXPECT_TRUE(reader.ReadUint64("huge", &out).ok());
    EXPECT_EQ(out, 9223372036854775807ull);
  }
}

TEST(JsonObjectReaderTest, RejectsWrongTypesAndUnknownKeys) {
  Result<Json> parsed = Json::Parse(R"({"count": "seven", "typo": 1})");
  ASSERT_TRUE(parsed.ok());
  {
    JsonObjectReader reader(*parsed);
    int count = 0;
    EXPECT_FALSE(reader.ReadInt("count", &count).ok());
  }
  {
    JsonObjectReader reader(*parsed);
    std::string count;
    EXPECT_TRUE(reader.ReadString("count", &count).ok());
    Status finish = reader.Finish("test");
    EXPECT_FALSE(finish.ok());
    EXPECT_NE(finish.message().find("typo"), std::string::npos);
  }
}

}  // namespace
}  // namespace seemore
