// Status/Result, hex, histogram and RNG determinism.

#include <gtest/gtest.h>

#include <cmath>

#include "util/hex.h"
#include "util/histogram.h"
#include "util/rng.h"
#include "util/status.h"
#include "wire/wire.h"

namespace seemore {
namespace {

TEST(StatusTest, OkAndErrors) {
  EXPECT_TRUE(Status::Ok().ok());
  EXPECT_EQ(Status::Ok().ToString(), "Ok");
  Status s = Status::Corruption("bad bytes");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kCorruption);
  EXPECT_EQ(s.ToString(), "Corruption: bad bytes");
}

TEST(ResultTest, ValueAndError) {
  Result<int> ok_result(42);
  EXPECT_TRUE(ok_result.ok());
  EXPECT_EQ(*ok_result, 42);
  EXPECT_EQ(ok_result.value_or(7), 42);

  Result<int> err_result(Status::NotFound("missing"));
  EXPECT_FALSE(err_result.ok());
  EXPECT_EQ(err_result.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(err_result.value_or(7), 7);
}

Result<int> Doubler(Result<int> in) {
  SEEMORE_ASSIGN_OR_RETURN(int v, std::move(in));
  return v * 2;
}

TEST(ResultTest, AssignOrReturnMacro) {
  EXPECT_EQ(*Doubler(21), 42);
  EXPECT_FALSE(Doubler(Status::Internal("x")).ok());
}

TEST(HexTest, RoundTrip) {
  Bytes data = {0x00, 0x01, 0xab, 0xff};
  std::string hex = HexEncode(data);
  EXPECT_EQ(hex, "0001abff");
  auto decoded = HexDecode(hex);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, data);
  EXPECT_TRUE(HexDecode("0001ABFF").ok());  // case-insensitive
  EXPECT_FALSE(HexDecode("abc").ok());      // odd length
  EXPECT_FALSE(HexDecode("zz").ok());       // non-hex
}

TEST(HistogramTest, BasicStats) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) h.Record(i * 1000);
  EXPECT_EQ(h.count(), 100);
  EXPECT_EQ(h.min(), 1000);
  EXPECT_EQ(h.max(), 100000);
  EXPECT_NEAR(h.Mean(), 50500.0, 1.0);
  EXPECT_GT(h.Percentile(50.0), 20000.0);
  EXPECT_LT(h.Percentile(50.0), 80000.0);
  EXPECT_GE(h.Percentile(99.0), h.Percentile(50.0));
  EXPECT_LE(h.Percentile(100.0), 100000.0);
}

TEST(HistogramTest, EmptyAndClear) {
  Histogram h;
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.Percentile(50.0), 0.0);
  h.Record(5);
  h.Clear();
  EXPECT_EQ(h.count(), 0);
}

TEST(HistogramTest, Merge) {
  Histogram a, b;
  a.Record(10);
  b.Record(30);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2);
  EXPECT_EQ(a.min(), 10);
  EXPECT_EQ(a.max(), 30);
  EXPECT_NEAR(a.Mean(), 20.0, 0.01);
}

TEST(HistogramTest, LargeValues) {
  Histogram h;
  h.Record(int64_t{1} << 50);
  EXPECT_EQ(h.count(), 1);
  EXPECT_EQ(h.max(), int64_t{1} << 50);
}

TEST(RngTest, Deterministic) {
  Rng a(99), b(99);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, SeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU64() == b.NextU64()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
    int64_t v = rng.NextInRange(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(13);
  double sum = 0;
  for (int i = 0; i < 20000; ++i) sum += rng.NextExponential(4.0);
  EXPECT_NEAR(sum / 20000.0, 4.0, 0.15);
}

}  // namespace
}  // namespace seemore
