// Status/Result, hex, histogram and RNG determinism.

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "util/arena.h"
#include "util/flat_hash_map.h"
#include "util/hex.h"
#include "util/histogram.h"
#include "util/rng.h"
#include "util/status.h"
#include "wire/wire.h"

namespace seemore {
namespace {

TEST(StatusTest, OkAndErrors) {
  EXPECT_TRUE(Status::Ok().ok());
  EXPECT_EQ(Status::Ok().ToString(), "Ok");
  Status s = Status::Corruption("bad bytes");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kCorruption);
  EXPECT_EQ(s.ToString(), "Corruption: bad bytes");
}

TEST(ResultTest, ValueAndError) {
  Result<int> ok_result(42);
  EXPECT_TRUE(ok_result.ok());
  EXPECT_EQ(*ok_result, 42);
  EXPECT_EQ(ok_result.value_or(7), 42);

  Result<int> err_result(Status::NotFound("missing"));
  EXPECT_FALSE(err_result.ok());
  EXPECT_EQ(err_result.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(err_result.value_or(7), 7);
}

Result<int> Doubler(Result<int> in) {
  SEEMORE_ASSIGN_OR_RETURN(int v, std::move(in));
  return v * 2;
}

TEST(ResultTest, AssignOrReturnMacro) {
  EXPECT_EQ(*Doubler(21), 42);
  EXPECT_FALSE(Doubler(Status::Internal("x")).ok());
}

TEST(HexTest, RoundTrip) {
  Bytes data = {0x00, 0x01, 0xab, 0xff};
  std::string hex = HexEncode(data);
  EXPECT_EQ(hex, "0001abff");
  auto decoded = HexDecode(hex);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, data);
  EXPECT_TRUE(HexDecode("0001ABFF").ok());  // case-insensitive
  EXPECT_FALSE(HexDecode("abc").ok());      // odd length
  EXPECT_FALSE(HexDecode("zz").ok());       // non-hex
}

TEST(HistogramTest, BasicStats) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) h.Record(i * 1000);
  EXPECT_EQ(h.count(), 100);
  EXPECT_EQ(h.min(), 1000);
  EXPECT_EQ(h.max(), 100000);
  EXPECT_NEAR(h.Mean(), 50500.0, 1.0);
  EXPECT_GT(h.Percentile(50.0), 20000.0);
  EXPECT_LT(h.Percentile(50.0), 80000.0);
  EXPECT_GE(h.Percentile(99.0), h.Percentile(50.0));
  EXPECT_LE(h.Percentile(100.0), 100000.0);
}

TEST(HistogramTest, EmptyAndClear) {
  Histogram h;
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.Percentile(50.0), 0.0);
  h.Record(5);
  h.Clear();
  EXPECT_EQ(h.count(), 0);
}

TEST(HistogramTest, Merge) {
  Histogram a, b;
  a.Record(10);
  b.Record(30);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2);
  EXPECT_EQ(a.min(), 10);
  EXPECT_EQ(a.max(), 30);
  EXPECT_NEAR(a.Mean(), 20.0, 0.01);
}

TEST(HistogramTest, LargeValues) {
  Histogram h;
  h.Record(int64_t{1} << 50);
  EXPECT_EQ(h.count(), 1);
  EXPECT_EQ(h.max(), int64_t{1} << 50);
}

TEST(RngTest, Deterministic) {
  Rng a(99), b(99);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, SeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU64() == b.NextU64()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
    int64_t v = rng.NextInRange(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(13);
  double sum = 0;
  for (int i = 0; i < 20000; ++i) sum += rng.NextExponential(4.0);
  EXPECT_NEAR(sum / 20000.0, 4.0, 0.15);
}

TEST(FlatHashMapTest, InsertFindErase) {
  FlatHashMap<int, std::string> m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.find(1), m.end());

  m[1] = "one";
  auto [it, inserted] = m.try_emplace(2, "two");
  EXPECT_TRUE(inserted);
  EXPECT_EQ(it->second, "two");
  EXPECT_FALSE(m.try_emplace(2, "TWO").second);  // no overwrite
  EXPECT_EQ(m.size(), 2u);
  EXPECT_EQ(m.find(2)->second, "two");
  EXPECT_TRUE(m.contains(1));
  EXPECT_FALSE(m.contains(3));

  EXPECT_EQ(m.erase(1), 1u);
  EXPECT_EQ(m.erase(1), 0u);
  EXPECT_EQ(m.size(), 1u);
  EXPECT_FALSE(m.contains(1));
  EXPECT_TRUE(m.contains(2));
}

TEST(FlatHashMapTest, GrowthKeepsAllEntries) {
  FlatHashMap<uint64_t, uint64_t> m;
  constexpr uint64_t kN = 10000;
  for (uint64_t i = 0; i < kN; ++i) m[i * 7919] = i;
  EXPECT_EQ(m.size(), kN);
  for (uint64_t i = 0; i < kN; ++i) {
    auto it = m.find(i * 7919);
    ASSERT_NE(it, m.end()) << i;
    EXPECT_EQ(it->second, i);
  }
  uint64_t count = 0;
  for (const auto& kv : m) {
    EXPECT_EQ(kv.first, kv.second * 7919);
    ++count;
  }
  EXPECT_EQ(count, kN);
}

TEST(FlatHashMapTest, TombstoneChurnStaysBounded) {
  // Insert/erase cycles must not poison probe chains or leak slots: the
  // in-place tombstone rehash keeps lookups working at steady-state size.
  FlatHashMap<int, int> m;
  for (int round = 0; round < 200; ++round) {
    for (int i = 0; i < 64; ++i) m[round * 64 + i] = i;
    for (int i = 0; i < 64; ++i) EXPECT_EQ(m.erase(round * 64 + i), 1u);
  }
  EXPECT_TRUE(m.empty());
  m[42] = 7;
  EXPECT_EQ(m.find(42)->second, 7);
}

TEST(FlatHashMapTest, EraseByIteratorAdvances) {
  FlatHashMap<int, int> m;
  for (int i = 0; i < 100; ++i) m[i] = i;
  for (auto it = m.begin(); it != m.end();) {
    if (it->first % 2 == 0) {
      it = m.erase(it);
    } else {
      ++it;
    }
  }
  EXPECT_EQ(m.size(), 50u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(m.contains(i), i % 2 == 1);
}

TEST(FlatHashSetTest, InsertContainsErase) {
  FlatHashSet<int> s;
  EXPECT_TRUE(s.insert(5).second);
  EXPECT_FALSE(s.insert(5).second);
  EXPECT_TRUE(s.contains(5));
  EXPECT_EQ(s.size(), 1u);
  for (int i = 0; i < 1000; ++i) s.insert(i);
  EXPECT_EQ(s.size(), 1000u);
  int seen = 0;
  for (int v : s) {
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 1000);
    ++seen;
  }
  EXPECT_EQ(seen, 1000);
  EXPECT_EQ(s.erase(5), 1u);
  EXPECT_FALSE(s.contains(5));
}

TEST(ArenaTest, BumpAllocationAndAlignment) {
  Arena arena(/*chunk_bytes=*/256);
  uint8_t* a = arena.Allocate(10, 1);
  uint8_t* b = arena.Allocate(10, 1);
  // Same chunk: the second allocation bumps past the first.
  EXPECT_EQ(b, a + 10);
  // Alignment holds on absolute addresses up to alignof(max_align_t) (the
  // chunk base's own guarantee from operator new[]).
  uint8_t* c = arena.Allocate(1, alignof(std::max_align_t));
  EXPECT_EQ(reinterpret_cast<uintptr_t>(c) % alignof(std::max_align_t), 0u);
  EXPECT_GE(arena.bytes_in_use(), 21u);
}

TEST(ArenaTest, ResetReusesCapacityWithoutReallocating) {
  Arena arena(/*chunk_bytes=*/128);
  // Fill several chunks, note the footprint, then reset: the next interval
  // must hand out the same memory again with zero new reservation (the
  // steady-state contract the replica hot path depends on).
  for (int i = 0; i < 10; ++i) arena.Allocate(100);
  uint8_t* first_round = arena.Allocate(64);
  const size_t reserved = arena.bytes_reserved();
  arena.Reset();
  EXPECT_EQ(arena.bytes_in_use(), 0u);
  uint8_t* second_round = nullptr;
  for (int i = 0; i < 10; ++i) arena.Allocate(100);
  second_round = arena.Allocate(64);
  EXPECT_EQ(second_round, first_round);
  EXPECT_EQ(arena.bytes_reserved(), reserved);
}

TEST(ArenaTest, OversizedRequestGetsExactChunk) {
  Arena arena(/*chunk_bytes=*/64);
  const size_t before = arena.bytes_reserved();
  uint8_t* big = arena.Allocate(1000);
  ASSERT_NE(big, nullptr);
  // One huge request reserves exactly its own size, not a multiple of the
  // chunk size — a single large message can't inflate every interval.
  EXPECT_EQ(arena.bytes_reserved(), before + 1000);
  big[0] = 1;
  big[999] = 2;  // whole extent is writable
  // Small allocations keep working after an oversized chunk.
  uint8_t* small = arena.Allocate(8);
  ASSERT_NE(small, nullptr);
  arena.Reset();
  EXPECT_EQ(arena.bytes_in_use(), 0u);
}

TEST(ArenaTest, AllocateArrayDefaultConstructs) {
  Arena arena;
  struct Span {
    uint32_t offset = 7;
    const uint8_t* data = nullptr;
    size_t len = 0;
  };
  Span* spans = arena.AllocateArray<Span>(33);
  for (size_t i = 0; i < 33; ++i) {
    EXPECT_EQ(spans[i].offset, 7u);
    EXPECT_EQ(spans[i].data, nullptr);
    EXPECT_EQ(spans[i].len, 0u);
  }
  EXPECT_EQ(reinterpret_cast<uintptr_t>(spans) % alignof(Span), 0u);
}

TEST(ArenaTest, ArenaVectorUsesArenaStorage) {
  Arena arena;
  ArenaVector<uint64_t> v{ArenaAllocator<uint64_t>(&arena)};
  for (uint64_t i = 0; i < 100; ++i) v.push_back(i);
  for (uint64_t i = 0; i < 100; ++i) EXPECT_EQ(v[i], i);
  // Element storage came from the arena (growth leaks old capacity into the
  // arena by design — deallocate is a no-op until Reset).
  EXPECT_GE(arena.bytes_in_use(), 100 * sizeof(uint64_t));
}

}  // namespace
}  // namespace seemore
