// Flag parsing and the multi-cloud sizing planner.

#include <gtest/gtest.h>

#include <cmath>

#include "consensus/config.h"
#include "util/flags.h"

namespace seemore {
namespace {

TEST(FlagsTest, ParsesAllForms) {
  FlagSet flags("test");
  flags.AddString("name", "default", "a string");
  flags.AddInt("count", 3, "an int");
  flags.AddDouble("rate", 0.5, "a double");
  flags.AddBool("verbose", false, "a bool");

  const char* argv[] = {"prog",          "--name=widget", "--count", "7",
                        "--rate=0.25",   "--verbose",     "extra"};
  ASSERT_TRUE(flags.Parse(7, const_cast<char**>(argv)).ok());
  EXPECT_EQ(flags.GetString("name"), "widget");
  EXPECT_EQ(flags.GetInt("count"), 7);
  EXPECT_DOUBLE_EQ(flags.GetDouble("rate"), 0.25);
  EXPECT_TRUE(flags.GetBool("verbose"));
  EXPECT_TRUE(flags.WasSet("name"));
  ASSERT_EQ(flags.positional().size(), 1u);
  EXPECT_EQ(flags.positional()[0], "extra");
}

TEST(FlagsTest, DefaultsWhenUnset) {
  FlagSet flags("test");
  flags.AddInt("count", 42, "an int");
  flags.AddBool("flag", true, "a bool");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(flags.Parse(1, const_cast<char**>(argv)).ok());
  EXPECT_EQ(flags.GetInt("count"), 42);
  EXPECT_TRUE(flags.GetBool("flag"));
  EXPECT_FALSE(flags.WasSet("count"));
}

TEST(FlagsTest, RejectsUnknownAndMalformed) {
  FlagSet flags("test");
  flags.AddInt("count", 0, "an int");
  {
    const char* argv[] = {"prog", "--nope=1"};
    EXPECT_FALSE(flags.Parse(2, const_cast<char**>(argv)).ok());
  }
  {
    const char* argv[] = {"prog", "--count=abc"};
    EXPECT_FALSE(flags.Parse(2, const_cast<char**>(argv)).ok());
  }
  {
    const char* argv[] = {"prog", "--count"};
    EXPECT_FALSE(flags.Parse(2, const_cast<char**>(argv)).ok());
  }
}

TEST(FlagsTest, HelpRequested) {
  FlagSet flags("test tool");
  flags.AddInt("count", 0, "an int");
  const char* argv[] = {"prog", "--help"};
  ASSERT_TRUE(flags.Parse(2, const_cast<char**>(argv)).ok());
  EXPECT_TRUE(flags.help_requested());
  EXPECT_NE(flags.Usage().find("--count"), std::string::npos);
}

TEST(FlagsTest, BoolExplicitFalse) {
  FlagSet flags("test");
  flags.AddBool("on", true, "a bool");
  const char* argv[] = {"prog", "--on=false"};
  ASSERT_TRUE(flags.Parse(2, const_cast<char**>(argv)).ok());
  EXPECT_FALSE(flags.GetBool("on"));
}

TEST(FlagsTest, RepeatedStringAccumulates) {
  FlagSet flags("test");
  flags.AddRepeatedString("switch", "", "a schedule");
  flags.AddString("name", "", "plain string");
  const char* argv[] = {"prog", "--switch=dog@150", "--switch=peacock@350",
                        "--name=a", "--name=b"};
  ASSERT_TRUE(flags.Parse(5, const_cast<char**>(argv)).ok());
  EXPECT_EQ(flags.GetString("switch"), "dog@150,peacock@350");
  // Non-repeated strings keep last-wins semantics.
  EXPECT_EQ(flags.GetString("name"), "b");
}

TEST(SplitStringTest, Basics) {
  EXPECT_TRUE(SplitString("", ',').empty());
  EXPECT_EQ(SplitString("a", ','), (std::vector<std::string>{"a"}));
  EXPECT_EQ(SplitString("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(SplitString("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
}

TEST(MultiCloudTest, SingleCloudMatchesEq2) {
  // One offer with unlimited capacity must reproduce the single-cloud
  // result of Eq. 2 (paper's worked example: S=2, c=1, a=0.3 -> 10 nodes).
  MultiCloudPlan plan =
      PlanMultiCloud(2, 1, {{"aws", 0.3, 1000}});
  ASSERT_TRUE(plan.feasible);
  EXPECT_EQ(plan.total_rented, 10);
  EXPECT_EQ(plan.network_size, 12);
}

TEST(MultiCloudTest, PrefersLowerAlphaCloud) {
  MultiCloudPlan plan = PlanMultiCloud(
      2, 1, {{"sketchy", 0.3, 100}, {"clean", 0.05, 100}});
  ASSERT_TRUE(plan.feasible);
  // Everything should come from the clean provider, and far fewer nodes
  // are needed than from the 0.3 provider alone.
  EXPECT_EQ(plan.rented[0], 0);
  EXPECT_GT(plan.rented[1], 0);
  EXPECT_LT(plan.total_rented, 10);
}

TEST(MultiCloudTest, SpillsOverWhenCapacityExhausted) {
  MultiCloudPlan plan = PlanMultiCloud(
      2, 1, {{"clean-small", 0.05, 2}, {"dirty-big", 0.25, 100}});
  ASSERT_TRUE(plan.feasible);
  EXPECT_EQ(plan.rented[0], 2);  // exhausted first (lower alpha)
  EXPECT_GT(plan.rented[1], 0);  // remainder from the other cloud
  // The plan satisfies Eq. 1 with the conservative malicious bounds.
  auto bound = [](double alpha, int p) {
    return static_cast<int>(std::ceil(alpha * p - 1e-9));
  };
  const int malicious =
      bound(0.05, plan.rented[0]) + bound(0.25, plan.rented[1]);
  EXPECT_GE(2 + plan.total_rented, HybridNetworkSize(malicious, 1));
}

TEST(MultiCloudTest, InfeasibleWhenCapacityTooSmall) {
  MultiCloudPlan plan = PlanMultiCloud(2, 1, {{"tiny", 0.3, 2}});
  EXPECT_FALSE(plan.feasible);
}

TEST(MultiCloudTest, SelfSufficientPrivateCloud) {
  MultiCloudPlan plan = PlanMultiCloud(5, 2, {{"any", 0.1, 10}});
  ASSERT_TRUE(plan.feasible);
  EXPECT_EQ(plan.total_rented, 0);
}

TEST(MultiCloudTest, UselessPrivateCloud) {
  MultiCloudPlan plan = PlanMultiCloud(1, 1, {{"any", 0.1, 100}});
  EXPECT_FALSE(plan.feasible);
}

}  // namespace
}  // namespace seemore
