// Payload sharing semantics and the digest/verify memo: zero-copy multicast
// must never let one receiver's behaviour corrupt another's view of the
// frame, and the memo must be a pure cache (same answers as recomputing).

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "crypto/memo.h"
#include "net/network.h"
#include "wire/payload.h"

namespace seemore {
namespace {

TEST(PayloadTest, WrapsBytesAndAssignsUniqueIds) {
  Payload empty;
  EXPECT_EQ(empty.size(), 0u);
  EXPECT_EQ(empty.id(), 0u);

  Payload a(Bytes{1, 2, 3});
  Payload b(Bytes{1, 2, 3});
  EXPECT_EQ(a.ToBytes(), (Bytes{1, 2, 3}));
  EXPECT_NE(a.id(), 0u);
  // Identical contents, distinct buffers: identity is per-buffer.
  EXPECT_NE(a.id(), b.id());
  EXPECT_FALSE(a.SharesBufferWith(b));

  Payload copy = a;
  EXPECT_EQ(copy.id(), a.id());
  EXPECT_TRUE(copy.SharesBufferWith(a));
  EXPECT_EQ(copy.data(), a.data());  // no byte copy
}

TEST(PayloadViewTest, ViewAliasesTheBlockWithoutCopying) {
  auto block =
      std::make_shared<const Bytes>(Bytes{0, 1, 2, 3, 4, 5, 6, 7, 8, 9});
  Payload view = Payload::View(block, 2, 5);
  EXPECT_EQ(view.size(), 5u);
  EXPECT_EQ(view.data(), block->data() + 2);  // aliases, never copies
  EXPECT_EQ(view.ToBytes(), (Bytes{2, 3, 4, 5, 6}));
  EXPECT_NE(view.id(), 0u);

  // Two views of the same range are distinct buffer identities: the memo
  // must never conflate them (surrounding block bytes differ in general).
  Payload again = Payload::View(block, 2, 5);
  EXPECT_NE(again.id(), view.id());
  EXPECT_FALSE(again.SharesBufferWith(view));

  // The view keeps the block alive after the last external reference dies.
  const Bytes* raw = block.get();
  block.reset();
  EXPECT_EQ(view.data(), raw->data() + 2);
  EXPECT_EQ(view.ToBytes(), (Bytes{2, 3, 4, 5, 6}));
}

TEST(PayloadTest, MakeDecoderCarriesBufferIdentity) {
  Payload p(Bytes{42, 7});
  Decoder dec = MakeDecoder(p);
  EXPECT_EQ(dec.buffer_id(), p.id());
  EXPECT_EQ(dec.GetU8(), 42);
  EXPECT_EQ(dec.pos(), 1u);
  const Bytes owned = p.ToBytes();
  Decoder plain(owned);
  EXPECT_EQ(plain.buffer_id(), 0u);
}

TEST(CryptoMemoTest, DigestMemoHitsOnSameRangeOfSameBuffer) {
  CryptoMemo memo;  // per-run instance, like the one each Cluster owns
  Payload p(Bytes(1000, 0xab));
  const uint64_t misses_before = memo.digest_misses();
  const uint64_t hits_before = memo.digest_hits();

  Digest first = memo.DigestOf(p.id(), 10, p.data() + 10, 100);
  Digest again = memo.DigestOf(p.id(), 10, p.data() + 10, 100);
  EXPECT_EQ(first, again);
  EXPECT_EQ(first, Digest::Of(p.data() + 10, 100));  // same answer as real
  EXPECT_EQ(memo.digest_misses(), misses_before + 1);
  EXPECT_EQ(memo.digest_hits(), hits_before + 1);

  // A different range of the same buffer is a distinct entry.
  Digest other = memo.DigestOf(p.id(), 20, p.data() + 20, 100);
  EXPECT_EQ(other, Digest::Of(p.data() + 20, 100));

  // Buffer id 0 (plain bytes) never caches.
  const uint64_t misses_mid = memo.digest_misses();
  const uint64_t hits_mid = memo.digest_hits();
  memo.DigestOf(0, 0, p.data(), 100);
  memo.DigestOf(0, 0, p.data(), 100);
  EXPECT_EQ(memo.digest_misses(), misses_mid);
  EXPECT_EQ(memo.digest_hits(), hits_mid);
}

TEST(CryptoMemoTest, VerifyMemoRunsTheCheckOncePerFrame) {
  CryptoMemo memo;
  Payload p(Bytes{1, 2, 3});
  int calls = 0;
  auto verify = [&] {
    ++calls;
    return true;
  };
  EXPECT_TRUE(memo.Verify(p.id(), /*signer=*/3, /*slot=*/7, verify));
  EXPECT_TRUE(memo.Verify(p.id(), 3, 7, verify));
  EXPECT_EQ(calls, 1);
  // A different signer or slot on the same frame is a different question.
  EXPECT_TRUE(memo.Verify(p.id(), 4, 7, verify));
  EXPECT_TRUE(memo.Verify(p.id(), 3, 8, verify));
  EXPECT_EQ(calls, 3);
  // Negative verdicts are cached too.
  int neg_calls = 0;
  auto fail = [&] {
    ++neg_calls;
    return false;
  };
  EXPECT_FALSE(memo.Verify(p.id(), 5, 1, fail));
  EXPECT_FALSE(memo.Verify(p.id(), 5, 1, fail));
  EXPECT_EQ(neg_calls, 1);
  // Unshared bytes (id 0) always verify for real.
  EXPECT_FALSE(memo.Verify(0, 5, 1, fail));
  EXPECT_EQ(neg_calls, 2);
}

/// Records every delivered payload (by shared handle, not by copy).
class PayloadRecorder : public MessageHandler {
 public:
  void OnMessage(PrincipalId, Payload payload) override {
    payloads.push_back(std::move(payload));
  }
  std::vector<Payload> payloads;
};

/// A "Byzantine" receiver that mutates its view of every message. The only
/// mutable view a handler can get is a copy — this pins down that mutating
/// it never touches the shared buffer.
class MutatingRecorder : public MessageHandler {
 public:
  void OnMessage(PrincipalId, Payload payload) override {
    Bytes mine = payload.ToBytes();  // the only way to a mutable view
    for (auto& b : mine) b ^= 0xff;
    mutated.push_back(std::move(mine));
    payloads.push_back(std::move(payload));
  }
  std::vector<Bytes> mutated;
  std::vector<Payload> payloads;
};

NetworkConfig QuietConfig() {
  NetworkConfig config;
  config.intra_private = {Micros(100), 0};
  config.intra_public = {Micros(100), 0};
  return config;
}

TEST(PayloadAliasingTest, MulticastSharesOneBufferAcrossReceivers) {
  Simulator sim;
  SimNetwork net(&sim, QuietConfig());
  PayloadRecorder handlers[4];
  for (int i = 0; i < 4; ++i) {
    net.AddNode(i, Zone::kPrivate, &handlers[i], nullptr);
  }
  const Bytes frame{9, 8, 7, 6};
  net.Multicast(0, {0, 1, 2, 3}, frame);
  sim.Run();
  ASSERT_EQ(handlers[1].payloads.size(), 1u);
  ASSERT_EQ(handlers[2].payloads.size(), 1u);
  ASSERT_EQ(handlers[3].payloads.size(), 1u);
  // Zero-copy: all receivers alias the same allocation.
  EXPECT_TRUE(
      handlers[1].payloads[0].SharesBufferWith(handlers[2].payloads[0]));
  EXPECT_TRUE(
      handlers[2].payloads[0].SharesBufferWith(handlers[3].payloads[0]));
  EXPECT_EQ(handlers[1].payloads[0].ToBytes(), frame);
}

TEST(PayloadAliasingTest, DuplicatedDeliveryAliasesTheSameFrame) {
  Simulator sim;
  NetworkConfig config = QuietConfig();
  config.duplicate_probability = 1.0;
  SimNetwork net(&sim, config);
  PayloadRecorder a, b;
  net.AddNode(0, Zone::kPrivate, &a, nullptr);
  net.AddNode(1, Zone::kPrivate, &b, nullptr);
  net.Send(0, 1, Bytes{1, 2, 3});
  sim.Run();
  ASSERT_EQ(b.payloads.size(), 2u);  // duplicated in flight
  EXPECT_TRUE(b.payloads[0].SharesBufferWith(b.payloads[1]));
  EXPECT_EQ(b.payloads[0].ToBytes(), (Bytes{1, 2, 3}));
  EXPECT_EQ(b.payloads[1].ToBytes(), (Bytes{1, 2, 3}));
}

TEST(PayloadAliasingTest, MutatingReceiverCannotCorruptOtherReceivers) {
  Simulator sim;
  NetworkConfig config = QuietConfig();
  config.duplicate_probability = 1.0;  // duplicates AND a mutator in one run
  SimNetwork net(&sim, config);
  MutatingRecorder byzantine;
  PayloadRecorder honest1, honest2;
  net.AddNode(0, Zone::kPrivate, &honest1, nullptr);
  net.AddNode(1, Zone::kPrivate, &byzantine, nullptr);
  net.AddNode(2, Zone::kPrivate, &honest2, nullptr);

  const Bytes frame{0x10, 0x20, 0x30, 0x40, 0x50};
  net.Multicast(0, {0, 1, 2}, frame);
  sim.Run();

  ASSERT_GE(byzantine.payloads.size(), 2u);  // duplication happened
  ASSERT_GE(honest2.payloads.size(), 2u);
  // The mutator really did flip its copies...
  for (const Bytes& m : byzantine.mutated) EXPECT_NE(m, frame);
  // ...but every aliased view of the shared buffer is pristine, including
  // the mutator's own second (duplicated) delivery.
  for (const Payload& p : byzantine.payloads) EXPECT_EQ(p.ToBytes(), frame);
  for (const Payload& p : honest2.payloads) {
    EXPECT_EQ(p.ToBytes(), frame);
    EXPECT_TRUE(p.SharesBufferWith(byzantine.payloads[0]));
  }
}

}  // namespace
}  // namespace seemore
