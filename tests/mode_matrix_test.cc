// Parameterized matrix over every mode transition × seed: each of the six
// directed transitions between {Lion, Dog, Peacock} must preserve committed
// state, keep clients progressing, and leave all replicas agreeing, with
// and without a concurrent Byzantine public replica.

#include <gtest/gtest.h>

#include <tuple>

#include "tests/test_util.h"

namespace seemore {
namespace {

using testing::SeeMoReOptions;
using testing::SubmitAndWait;

constexpr SeeMoReMode kModes[] = {SeeMoReMode::kLion, SeeMoReMode::kDog,
                                  SeeMoReMode::kPeacock};

class ModeMatrixTest
    : public ::testing::TestWithParam<std::tuple<int, int, uint64_t, bool>> {
 protected:
  SeeMoReMode From() const { return kModes[std::get<0>(GetParam())]; }
  SeeMoReMode To() const { return kModes[std::get<1>(GetParam())]; }
  uint64_t Seed() const { return std::get<2>(GetParam()); }
  bool WithByzantine() const { return std::get<3>(GetParam()); }
};

TEST_P(ModeMatrixTest, TransitionPreservesStateAndProgress) {
  if (From() == To()) GTEST_SKIP() << "self-transition";
  Cluster cluster(SeeMoReOptions(From(), 1, 1, Seed()));
  if (WithByzantine()) cluster.SetByzantine(5, kByzWrongVotes);
  SimClient* client = cluster.AddClient();

  // Commit data in the source mode.
  auto put = SubmitAndWait(cluster, client, MakePut("pre", "old-mode"),
                           Seconds(10));
  ASSERT_TRUE(put.ok()) << put.status().ToString();

  // Switch.
  SeeMoReReplica* any = cluster.seemore(0);
  const uint64_t next_view = any->view() + 1;
  const PrincipalId authority = any->SwitchAuthority(To(), next_view);
  ASSERT_TRUE(cluster.config().IsTrusted(authority));
  Status status = cluster.seemore(authority)->RequestModeSwitch(To());
  ASSERT_TRUE(status.ok()) << status.ToString();
  cluster.sim().RunUntil(cluster.sim().now() + Millis(600));

  // Every live replica adopted the target mode.
  for (int i = 0; i < cluster.n(); ++i) {
    if (WithByzantine() && i == 5) continue;  // the liar's word is worthless
    EXPECT_EQ(cluster.seemore(i)->mode(), To())
        << "replica " << i << " " << SeeMoReModeName(From()) << "->"
        << SeeMoReModeName(To());
  }

  // Old state readable, new writes commit, agreement holds.
  auto get = SubmitAndWait(cluster, client, MakeGet("pre"), Seconds(10));
  ASSERT_TRUE(get.ok()) << get.status().ToString();
  EXPECT_EQ(ParseKvReply(*get).value, "old-mode");
  auto put2 =
      SubmitAndWait(cluster, client, MakePut("post", "new-mode"), Seconds(10));
  ASSERT_TRUE(put2.ok()) << put2.status().ToString();
  cluster.sim().RunUntil(cluster.sim().now() + Millis(100));
  Status agreement = cluster.CheckAgreement();
  EXPECT_TRUE(agreement.ok()) << agreement.ToString();
}

std::string MatrixName(
    const ::testing::TestParamInfo<std::tuple<int, int, uint64_t, bool>>&
        info) {
  static constexpr const char* kNames[] = {"Lion", "Dog", "Peacock"};
  return std::string(kNames[std::get<0>(info.param)]) + "To" +
         kNames[std::get<1>(info.param)] + "_seed" +
         std::to_string(std::get<2>(info.param)) +
         (std::get<3>(info.param) ? "_byz" : "");
}

INSTANTIATE_TEST_SUITE_P(AllTransitions, ModeMatrixTest,
                         ::testing::Combine(::testing::Range(0, 3),
                                            ::testing::Range(0, 3),
                                            ::testing::Values(1u, 2u),
                                            ::testing::Bool()),
                         MatrixName);

}  // namespace
}  // namespace seemore
